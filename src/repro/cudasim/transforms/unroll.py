"""Loop unrolling with induction-variable and address-offset folding.

This pass reproduces what the paper does by hand in Sec. IV-A: replicate
the innermost loop body, delete the per-iteration bookkeeping, and fold
the address computation into the load instruction's immediate offset::

    rolled (per iteration):        fully unrolled (per former iteration):
      ld.shared.v4 q, [saddr+0]      ld.shared.v4 q, [sbase+16*u]
      ... physics ...                ... physics ...
      iadd saddr, saddr, 16          (folded into the offset above)
      iadd j, j, 1                   (gone — iterator register freed)
      setp.lt p, j, K                (gone)
      @p bra head                    (gone)

The per-iteration saving — "one compare, an add, a jump plus an additional
add to calculate the address offset that now is hard coded" — is exactly
the paper's ~18 % instruction reduction, and dropping the iterator is the
freed register of its occupancy argument.

Body-local temporaries are deliberately *not* renamed per replica: the
replicas run sequentially with identical dataflow, so reusing names keeps
register pressure identical to the rolled loop (as the paper observed —
unrolling did not raise pressure, it lowered it).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Union

from ..errors import IRError
from ..ir import IfStmt, Kernel, LoopStmt, RawStmt, Seq, Stmt, walk_instrs
from ..isa import Imm, Instr, Op, Reg

__all__ = ["unroll_loops", "UnrollDecision"]

UnrollFactor = Union[int, str, None]


class UnrollDecision:
    """Why a loop was or wasn't unrolled (surfaced in reports/tests)."""

    def __init__(self, loop_var: str, factor: int | None, reason: str) -> None:
        self.loop_var = loop_var
        self.factor = factor
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Unroll {self.loop_var}: {self.factor} ({self.reason})>"


def _reads_of(stmt: Stmt) -> set[Reg]:
    out: set[Reg] = set()
    for ins in walk_instrs(stmt):
        out.update(ins.reads())
        if ins.pred is not None:
            out.add(ins.pred)
    return out


def _writes_of(stmt: Stmt) -> set[Reg]:
    out: set[Reg] = set()
    for ins in walk_instrs(stmt):
        out.update(ins.writes())
    return out


def _find_induction_regs(body: Seq) -> dict[Reg, int]:
    """Foldable induction registers of a loop body.

    A register ``r`` folds when its only appearances at the *top level* of
    the body are (a) exactly one ``IADD r, r, Imm(c)`` which is the last
    statement mentioning ``r``, and (b) uses as the address operand of
    memory instructions.  Anything fancier keeps its per-iteration update.
    """
    candidates: dict[Reg, int] = {}
    last_mention: dict[Reg, int] = {}
    incr_index: dict[Reg, int] = {}
    disqualified: set[Reg] = set()

    for idx, stmt in enumerate(body):
        if not isinstance(stmt, RawStmt):
            # Nested control flow: any register it touches is disqualified.
            disqualified |= _reads_of(stmt) | _writes_of(stmt)
            continue
        ins = stmt.instr
        mentioned = set(ins.reads()) | set(ins.writes())
        for r in mentioned:
            last_mention[r] = idx
        if (
            ins.op is Op.IADD
            and len(ins.dsts) == 1
            and ins.pred is None
            and isinstance(ins.srcs[0], Reg)
            and ins.srcs[0] == ins.dsts[0]
            and isinstance(ins.srcs[1], Imm)
        ):
            r = ins.dsts[0]
            if r in incr_index:
                disqualified.add(r)  # two increments: not simple induction
            else:
                incr_index[r] = idx
                candidates[r] = int(ins.srcs[1].value)
            continue
        # Non-increment mention: only legal as a memory address base.
        if ins.op in (Op.LD_GLOBAL, Op.ST_GLOBAL, Op.LD_SHARED, Op.ST_SHARED, Op.LD_TEX):
            for r in list(ins.writes()) + [
                s for s in ins.srcs[1:] if isinstance(s, Reg)
            ]:
                disqualified.add(r)
            # srcs[0] (the address) is the allowed use — not disqualifying.
        else:
            disqualified |= mentioned

    folded: dict[Reg, int] = {}
    for r, step in candidates.items():
        if r in disqualified:
            continue
        if last_mention.get(r) != incr_index.get(r):
            continue  # used after its increment within the iteration
        folded[r] = step
    return folded


def _shift_stmt(stmt: Stmt, folded: dict[Reg, int], replica: int) -> Stmt:
    """Copy of ``stmt`` with folded-induction increments removed and memory
    offsets advanced by ``replica`` steps."""
    if isinstance(stmt, RawStmt):
        ins = stmt.instr
        if (
            ins.op is Op.IADD
            and ins.dsts
            and ins.dsts[0] in folded
            and ins.srcs
            and ins.srcs[0] == ins.dsts[0]
        ):
            return RawStmt(Instr(Op.NOP, comment=f"folded {ins.dsts[0].name}"))
        if (
            ins.op in (Op.LD_GLOBAL, Op.ST_GLOBAL, Op.LD_SHARED, Op.ST_SHARED, Op.LD_TEX)
            and isinstance(ins.srcs[0], Reg)
            and ins.srcs[0] in folded
            and replica
        ):
            return RawStmt(
                ins.with_(offset=ins.offset + replica * folded[ins.srcs[0]])
            )
        return RawStmt(ins)
    if isinstance(stmt, Seq):
        return Seq([_shift_stmt(s, folded, replica) for s in stmt])
    if isinstance(stmt, LoopStmt):
        return replace(
            stmt, body=Seq([_shift_stmt(s, folded, replica) for s in stmt.body])
        )
    if isinstance(stmt, IfStmt):
        return replace(
            stmt, body=Seq([_shift_stmt(s, folded, replica) for s in stmt.body])
        )
    raise IRError(f"cannot copy {stmt!r}")  # pragma: no cover - defensive


def _substitute_imm(stmt: Stmt, reg: Reg, value: int) -> Stmt:
    """Replace reads of ``reg`` with an immediate (full-unroll loop var)."""

    def fix(ins: Instr) -> Instr:
        if reg in ins.reads():
            if ins.pred == reg:
                raise IRError("loop variable used as a predicate")
            srcs = tuple(
                Imm(value) if s == reg else s for s in ins.srcs
            )
            return ins.with_(srcs=srcs)
        return ins

    if isinstance(stmt, RawStmt):
        return RawStmt(fix(stmt.instr))
    if isinstance(stmt, Seq):
        return Seq([_substitute_imm(s, reg, value) for s in stmt])
    if isinstance(stmt, LoopStmt):
        return replace(
            stmt,
            body=Seq([_substitute_imm(s, reg, value) for s in stmt.body]),
            start=Imm(value) if stmt.start == reg else stmt.start,
            stop=Imm(value) if stmt.stop == reg else stmt.stop,
        )
    if isinstance(stmt, IfStmt):
        return replace(
            stmt, body=Seq([_substitute_imm(s, reg, value) for s in stmt.body])
        )
    raise IRError(f"cannot substitute in {stmt!r}")  # pragma: no cover


def _expand_loop(
    loop: LoopStmt,
    factor: UnrollFactor,
    live_after: set[Reg],
    decisions: list[UnrollDecision],
) -> list[Stmt]:
    trip = loop.static_trip_count()
    if factor in (None, 1):
        decisions.append(UnrollDecision(loop.var.name, None, "no pragma"))
        return [replace(loop, unroll=None)]
    if trip is None:
        decisions.append(
            UnrollDecision(loop.var.name, None, "dynamic trip count")
        )
        return [replace(loop, unroll=None)]
    if factor == "full":
        factor = trip
    factor = int(factor)
    if factor <= 0 or trip % factor:
        raise IRError(
            f"unroll factor {factor} does not divide trip count {trip}"
        )

    folded = _find_induction_regs(loop.body)
    var_read = loop.var in _reads_of(loop.body)

    def replicas(count: int, start_value: int | None) -> list[Stmt]:
        out: list[Stmt] = []
        for u in range(count):
            body: Stmt = Seq([_shift_stmt(s, folded, u) for s in loop.body])
            if var_read:
                if start_value is None:
                    raise IRError(
                        "loop variable read inside a partially-unrolled "
                        "dynamic loop is not supported; hoist the use or "
                        "unroll fully"
                    )
                body = _substitute_imm(
                    body, loop.var, start_value + u * loop.step
                )
            out.append(body)
        return out

    if factor == trip:
        # ---- full unroll: the loop disappears ------------------------------
        start_value = (
            int(loop.start.value) if isinstance(loop.start, Imm) else None
        )
        stmts: list[Stmt] = replicas(trip, start_value)
        for r, step in folded.items():
            if r in live_after:
                stmts.append(
                    RawStmt(
                        Instr(
                            Op.IADD,
                            dsts=(r,),
                            srcs=(r, Imm(step * trip)),
                            comment="induction final value",
                        )
                    )
                )
        if loop.var in live_after:
            if start_value is None:
                raise IRError(
                    "cannot materialize final value of a dynamic loop variable"
                )
            stmts.append(
                RawStmt(
                    Instr(
                        Op.MOV,
                        dsts=(loop.var,),
                        srcs=(Imm(start_value + trip * loop.step),),
                        comment="loop var final value",
                    )
                )
            )
        decisions.append(UnrollDecision(loop.var.name, trip, "full"))
        return stmts

    # ---- partial unroll: keep the loop with a larger step ----------------
    if var_read:
        # Replicas need var + u*step at runtime; materialize per replica.
        bodies: list[Stmt] = []
        for u in range(factor):
            rep = Seq([_shift_stmt(s, folded, u) for s in loop.body])
            if u:
                shifted = Reg(f"{loop.var.name}_u{u}")
                prefix = RawStmt(
                    Instr(
                        Op.IADD,
                        dsts=(shifted,),
                        srcs=(loop.var, Imm(u * loop.step)),
                        comment=f"unrolled iteration {u}",
                    )
                )
                rep = Seq([prefix, *_rename_reads(rep, loop.var, shifted)])
            bodies.append(rep)
        new_body = Seq(bodies)
    else:
        new_body = Seq(replicas(factor, 0))
    closing: list[Stmt] = [
        RawStmt(
            Instr(
                Op.IADD,
                dsts=(r,),
                srcs=(r, Imm(step * factor)),
                comment="combined induction step",
            )
        )
        for r, step in folded.items()
    ]
    new_body = Seq([*new_body.stmts, *closing])
    decisions.append(UnrollDecision(loop.var.name, factor, "partial"))
    return [
        replace(
            loop, body=new_body, step=loop.step * factor, unroll=None
        )
    ]


def _rename_reads(stmt: Stmt, old: Reg, new: Reg) -> list[Stmt]:
    def fix(ins: Instr) -> Instr:
        srcs = tuple(new if s == old else s for s in ins.srcs)
        pred = new if ins.pred == old else ins.pred
        return ins.with_(srcs=srcs, pred=pred)

    if isinstance(stmt, RawStmt):
        return [RawStmt(fix(stmt.instr))]
    if isinstance(stmt, Seq):
        return [Seq(sum((_rename_reads(s, old, new) for s in stmt), []))]
    if isinstance(stmt, LoopStmt):
        return [
            replace(
                stmt,
                body=Seq(sum((_rename_reads(s, old, new) for s in stmt.body), [])),
            )
        ]
    if isinstance(stmt, IfStmt):
        return [
            replace(
                stmt,
                body=Seq(sum((_rename_reads(s, old, new) for s in stmt.body), [])),
            )
        ]
    raise IRError(f"cannot rename in {stmt!r}")  # pragma: no cover


def unroll_loops(
    kernel: Kernel,
    override: UnrollFactor = None,
    decisions: list[UnrollDecision] | None = None,
) -> Kernel:
    """Expand every loop according to its ``unroll`` pragma.

    ``override``, when given, replaces the pragma of every *innermost*
    loop (how the experiments sweep unroll factors without rebuilding the
    kernel).  Returns a new kernel; the input is not modified.
    """
    if decisions is None:
        decisions = []

    def rewrite(stmt: Stmt, outside_reads: set[Reg]) -> list[Stmt]:
        """``outside_reads``: registers read anywhere *outside* ``stmt``.

        When a loop is deleted by full unrolling, only registers in this
        set need their final values materialized — the loop variable and
        folded induction registers are normally read nowhere else, which
        is precisely how unrolling frees them (Sec. IV-A).
        """
        if isinstance(stmt, RawStmt):
            return [stmt]
        if isinstance(stmt, Seq):
            reads_each = [_reads_of(s) for s in stmt.stmts]
            new: list[Stmt] = []
            for i, s in enumerate(stmt.stmts):
                siblings: set[Reg] = set().union(
                    *(r for j, r in enumerate(reads_each) if j != i),
                    outside_reads,
                )
                new.extend(rewrite(s, siblings))
            return [Seq(new)]
        if isinstance(stmt, IfStmt):
            body = Seq(sum((rewrite(s, outside_reads | {stmt.pred}) for s in stmt.body), []))
            return [replace(stmt, body=body)]
        if isinstance(stmt, LoopStmt):
            has_inner = any(isinstance(i, LoopStmt) for i in _sub_stmts(stmt.body))
            inner = rewrite(stmt.body, outside_reads)
            body = inner[0] if len(inner) == 1 and isinstance(inner[0], Seq) else Seq(inner)
            loop = replace(stmt, body=body)
            factor = loop.unroll
            if override is not None and not has_inner:
                factor = override
            return _expand_loop(loop, factor, outside_reads, decisions)
        raise IRError(f"cannot rewrite {stmt!r}")  # pragma: no cover

    rewritten = rewrite(kernel.body, set())
    body = rewritten[0] if len(rewritten) == 1 and isinstance(rewritten[0], Seq) else Seq(rewritten)
    body = _strip_loop_machinery_reads(body, set())
    return kernel.with_body(body)


def _sub_stmts(stmt: Stmt):
    if isinstance(stmt, Seq):
        for s in stmt:
            yield s
            yield from _sub_stmts(s)
    elif isinstance(stmt, (LoopStmt, IfStmt)):
        yield from _sub_stmts(stmt.body)


def _strip_loop_machinery_reads(body: Seq, kernel_reads: set[Reg]) -> Seq:
    """Drop final-value materializations for registers nothing reads.

    ``_expand_loop`` conservatively appends final-value updates for folded
    induction registers that *appear* read elsewhere; when the only such
    "read" was inside the now-deleted loop machinery, the peephole DCE in
    :mod:`repro.cudasim.transforms.peephole` cleans them — here we only
    drop the NOP placeholders left by folding to keep listings tidy."""

    def clean(stmt: Stmt) -> list[Stmt]:
        if isinstance(stmt, RawStmt):
            if stmt.instr.op is Op.NOP:
                return []
            return [stmt]
        if isinstance(stmt, Seq):
            return [Seq(sum((clean(s) for s in stmt), []))]
        if isinstance(stmt, LoopStmt):
            return [replace(stmt, body=Seq(sum((clean(s) for s in stmt.body), [])))]
        if isinstance(stmt, IfStmt):
            return [replace(stmt, body=Seq(sum((clean(s) for s in stmt.body), [])))]
        raise IRError(f"cannot clean {stmt!r}")  # pragma: no cover

    return Seq(sum((clean(s) for s in body), []))

"""Host-side driver API: compile, allocate, copy, launch.

:class:`Device` is the simulator's answer to the CUDA runtime: it owns the
global memory, the toolchain (whose coalescing policy the paper varies),
and kernel launches.  :func:`compile_kernel` is the "nvcc" stage — it runs
the transform pipeline (LICM, unrolling, peephole), lowers, and allocates
registers, producing the per-thread register count that the occupancy
calculator consumes at launch time.  Compilation is memoized through the
content-addressed :mod:`repro.cudasim.kernel_cache`, and
:meth:`Device.stream` opens the asynchronous, CUDA-streams-style queue API
of :mod:`repro.cudasim.stream`.

Example::

    dev = Device(toolchain=Toolchain.CUDA_1_0)
    lk = dev.compile(kernel, CompileOptions(unroll=Unroll.FULL, licm=True))
    with dev.stream() as s:
        buf = dev.malloc(layout.size_bytes)
        s.memcpy_htod_async(buf, layout.pack(arrays))
        h = s.launch_async(lk, grid=313, block=128, params={"pos": buf, "n": n})
        s.synchronize()
    print(h.result().stats.summary(), h.result().time_ms)
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from typing import Mapping, Union

import numpy as np

from ..core.coalescing import CoalescingPolicy, policy_for
from ..telemetry import runtime as _telemetry
from .device import DeviceProperties, G8800GTX, Toolchain
from .envflags import env_choice, env_float
from .errors import LaunchError
from .executor import ENGINE_ENV, SM_ENGINES, run_sms
from .fastpath import fastpath_mode
from .ir import Kernel
from .kernel_cache import CompileOptions, KernelCache, default_cache
from .lower import LoweredKernel, lower
from .memory import DevicePtr, GlobalMemory
from .occupancy import OccupancyResult, occupancy
from .profiler import KernelStats
from .profiler import runtime as _profiler
from .regalloc import allocate
from .transforms import (
    eliminate_dead_code,
    fold_constants,
    hoist_invariants,
    unroll_loops,
)

__all__ = [
    "Device",
    "LaunchResult",
    "compile_kernel",
    "lower_kernel",
    "EVENT_TIMEOUT_ENV",
    "DEFAULT_EVENT_TIMEOUT",
]

#: Default simulated heap: big enough for a million 32-byte records plus
#: headroom, small enough to allocate instantly on the host.
DEFAULT_HEAP_BYTES = 192 * 1024 * 1024

#: Environment override for the default cross-stream event-wait timeout
#: (host seconds; ``inf`` waits forever).  See ``Device(event_timeout=)``.
EVENT_TIMEOUT_ENV = "REPRO_EVENT_TIMEOUT"

#: Default wall-clock guard on ``Stream.wait_event`` — generous enough
#: for saturated service queues, finite so a wait on an event nobody
#: records still surfaces as an error instead of a hang.
DEFAULT_EVENT_TIMEOUT = 60.0

_UNSET = object()
_legacy_kwargs_warned = False


def lower_kernel(kernel: Kernel, options: CompileOptions) -> LoweredKernel:
    """The uncached compilation pipeline: validate, transform, lower,
    allocate registers.  Register allocation runs last so ``reg_count``
    reflects the optimized code."""
    if options.validate:
        from .validation import check_or_raise

        check_or_raise(kernel)
    k = kernel
    if options.licm:
        k = hoist_invariants(k)
    k = unroll_loops(k, override=options.unroll)
    lk = lower(k)
    if options.dce:
        fold_constants(lk)
        eliminate_dead_code(lk)
    allocate(lk, max_registers=options.max_registers)
    return lk


def compile_kernel(
    kernel: Kernel,
    options: CompileOptions | None = None,
    *,
    cache: KernelCache | None | object = _UNSET,
    toolchain: Toolchain | None = None,
    unroll: Union[int, str, None, object] = _UNSET,
    licm: bool | object = _UNSET,
    dce: bool | object = _UNSET,
    max_registers: int | None | object = _UNSET,
    validate: bool | object = _UNSET,
) -> LoweredKernel:
    """Lower a kernel through the optimization pipeline (memoized).

    The configuration lives in ``options`` (:class:`CompileOptions`):
    ``unroll`` overrides the innermost-loop pragma, ``licm`` enables
    invariant code motion (the paper's manual optimization), ``dce`` runs
    constant folding + dead-code elimination, ``validate`` runs the
    static checker first.  Results are memoized in ``cache`` (default:
    the process-wide cache) keyed by the kernel's IR hash, the options
    and ``toolchain``; pass ``cache=None`` to force a fresh compilation.

    The pre-1.1 keyword form ``compile_kernel(kernel, unroll=..., ...)``
    still works but is deprecated (one warning per process).
    """
    global _legacy_kwargs_warned
    legacy = {
        name: value
        for name, value in (
            ("unroll", unroll),
            ("licm", licm),
            ("dce", dce),
            ("max_registers", max_registers),
            ("validate", validate),
        )
        if value is not _UNSET
    }
    if legacy:
        if options is not None:
            raise TypeError(
                "pass either a CompileOptions or the legacy keyword "
                f"arguments, not both: {sorted(legacy)}"
            )
        if not _legacy_kwargs_warned:
            _legacy_kwargs_warned = True
            warnings.warn(
                "compile_kernel(kernel, unroll=, licm=, dce=, "
                "max_registers=, validate=) is deprecated; pass a "
                "CompileOptions instead: compile_kernel(kernel, "
                "CompileOptions(...))",
                DeprecationWarning,
                stacklevel=2,
            )
        options = CompileOptions(**legacy)
    if options is None:
        options = CompileOptions()
    cache_obj = default_cache() if cache is _UNSET else cache
    if cache_obj is None:
        return lower_kernel(kernel, options)
    return cache_obj.get_or_compile(
        kernel, options, lower_kernel, toolchain=toolchain
    )


@dataclass
class LaunchResult:
    """Outcome of one simulated kernel launch."""

    kernel_name: str
    grid: int
    block: int
    cycles: float
    stats: KernelStats
    occupancy: OccupancyResult
    device: DeviceProperties = field(repr=False, default=G8800GTX)
    #: Per-SM counter snapshots, index-aligned with ``stats.sm_cycles``
    #: (only SMs that received blocks appear).  The timeline exporter
    #: reads these to draw one slice + memory-pipe track per SM.
    sm_stats: list[KernelStats] = field(repr=False, default_factory=list)
    #: Merged :class:`~repro.cudasim.profiler.KernelProfile` when the
    #: launch ran with the profiler enabled, else ``None``.
    profile: object | None = field(repr=False, default=None)

    @property
    def time_s(self) -> float:
        return self.device.cycles_to_seconds(self.cycles)

    @property
    def time_ms(self) -> float:
        return 1e3 * self.time_s


class Device:
    """A simulated GPU + driver of a given CUDA toolchain revision.

    ``sm_engine`` selects how cycle simulation distributes SMs:
    ``"serial"`` (the historical loop), ``"thread"`` or ``"process"``
    (``concurrent.futures`` pools; see :func:`repro.cudasim.executor.run_sms`).
    Defaults to the ``REPRO_SM_ENGINE`` environment variable, else serial.
    ``cache`` is the kernel-compilation cache :meth:`compile` consults
    (default: the process-wide cache; pass ``None`` to disable).
    ``fastpath`` selects the execution mode of
    :mod:`repro.cudasim.fastpath` (bit-identical to the reference
    interpreter): ``0``/``False`` interpreter, ``1`` per-warp codegen,
    ``2``/``True`` cross-warp vectorized.  It defaults to the
    ``REPRO_EXEC_FASTPATH`` environment variable, else mode 2; the
    resolved mode is exposed as :attr:`fastpath_mode` (``fastpath`` is
    a read-only boolean view of it).
    ``name`` labels this device in telemetry spans and Chrome-trace
    tracks (:class:`~repro.cudasim.device_group.DeviceGroup` names its
    members ``dev0``, ``dev1``, …).
    """

    def __init__(
        self,
        props: DeviceProperties = G8800GTX,
        toolchain: Toolchain = Toolchain.CUDA_1_0,
        heap_bytes: int = DEFAULT_HEAP_BYTES,
        sm_engine: str | None = None,
        cache: KernelCache | None | object = _UNSET,
        fastpath: bool | int | None = None,
        name: str | None = None,
        event_timeout: float | None = None,
    ) -> None:
        self.props = props
        self.toolchain = toolchain
        self.name = name
        # Default wall-clock guard for Stream.wait_event on this device's
        # streams (host seconds).  None defers to REPRO_EVENT_TIMEOUT,
        # else 60 s; math.inf (or REPRO_EVENT_TIMEOUT=inf) waits forever.
        if event_timeout is None:
            event_timeout = env_float(EVENT_TIMEOUT_ENV, DEFAULT_EVENT_TIMEOUT)
        if event_timeout <= 0:
            raise ValueError(
                f"event_timeout must be > 0 seconds, got {event_timeout!r}"
            )
        self.event_timeout = float(event_timeout)
        self.policy: CoalescingPolicy = policy_for(toolchain)
        self.gmem = GlobalMemory(min(heap_bytes, props.global_mem_bytes))
        engine = sm_engine or env_choice(ENGINE_ENV, SM_ENGINES, "serial")
        if engine not in SM_ENGINES:
            raise LaunchError(
                f"unknown SM engine {engine!r}; choose from {SM_ENGINES}"
            )
        self.sm_engine = engine
        self.fastpath_mode = fastpath_mode(fastpath)
        self._cache = cache
        self._streams: list = []
        self._launch_lock = threading.Lock()

    @property
    def fastpath(self) -> bool:
        """Whether any compiled fast path is active (mode > 0)."""
        return self.fastpath_mode > 0

    # -- compilation ---------------------------------------------------------

    def compile(
        self, kernel: Kernel, options: CompileOptions | None = None
    ) -> LoweredKernel:
        """Compile ``kernel`` for this device, keyed by its toolchain.

        Equivalent to :func:`compile_kernel` with ``toolchain=self.toolchain``
        — two devices of different toolchain revisions never share a
        cache entry, mirroring per-``nvcc`` object files.
        """
        return compile_kernel(
            kernel, options or CompileOptions(),
            cache=self._cache, toolchain=self.toolchain,
        )

    # -- streams -------------------------------------------------------------

    def stream(self, name: str | None = None):
        """Open an asynchronous work queue (see :mod:`repro.cudasim.stream`)."""
        from .stream import Stream

        s = Stream(self, name=name)
        self._streams.append(s)
        return s

    def synchronize(self) -> None:
        """Block until every stream created on this device has drained."""
        for s in list(self._streams):
            s.synchronize()

    def queue_depth(self) -> int:
        """Submitted-but-unfinished ops across this device's streams.

        The host-side load signal schedulers (the simulation service)
        use for placement and backpressure decisions.
        """
        return sum(s.depth for s in list(self._streams))

    # -- memory management ---------------------------------------------------

    def malloc(self, nbytes: int) -> DevicePtr:
        return self.gmem.alloc(nbytes)

    def free(self, ptr: DevicePtr) -> None:
        self.gmem.free(ptr)

    def reset(self) -> None:
        self.gmem.reset()

    def memcpy_htod(self, ptr: DevicePtr | int, data: np.ndarray) -> None:
        self.gmem.write(ptr, data)

    def memcpy_dtoh(self, ptr: DevicePtr | int, nwords: int) -> np.ndarray:
        return self.gmem.read(ptr, nwords)

    # -- launching ---------------------------------------------------------------

    def launch(
        self,
        lk: LoweredKernel,
        grid: int,
        block: int,
        params: Mapping[str, object] | None = None,
        sm_count: int | None = None,
        max_resident_blocks: int | None = None,
        trace=None,
        stream: str | None = None,
    ) -> LaunchResult:
        """Cycle-simulate a 1-D launch.

        ``sm_count`` restricts the simulation to that many SMs (used by
        the hybrid timing mode to measure one representative SM);
        ``max_resident_blocks`` overrides the occupancy calculator (for
        what-if experiments); ``trace`` is an optional
        :class:`repro.cudasim.trace.TraceRecorder`-style hook invoked on
        every global access (forces the serial engine); ``stream`` tags
        the telemetry span with the issuing stream's name.  Launch time
        is ``max`` over the SMs' finish cycles.  SMs are simulated by the
        device's ``sm_engine`` — results are merged in SM order, so all
        engines produce identical stats and heap contents.
        """
        if grid <= 0:
            raise LaunchError(f"grid must be positive, got {grid}")
        occ = occupancy(
            self.props, block, max(1, lk.reg_count), 4 * lk.shared_words
        )
        resident = max_resident_blocks or occ.blocks_per_sm
        n_sms = min(sm_count or self.props.num_sms, self.props.num_sms, grid)

        values = dict(params or {})
        missing = set(lk.kernel.params) - set(values)
        if missing:
            raise LaunchError(f"missing kernel parameters: {sorted(missing)}")
        for name, v in values.items():
            if isinstance(v, DevicePtr):
                values[name] = int(v)

        assignments = [
            (sm, block_ids)
            for sm in range(n_sms)
            if (block_ids := list(range(sm, grid, n_sms)))
        ]
        stats = KernelStats()
        per_sm: list[KernelStats] = []
        end = 0.0
        span_attrs = {"kernel": lk.name, "grid": grid, "block": block}
        if stream is not None:
            span_attrs["stream"] = stream
        if self.name is not None:
            span_attrs["device"] = self.name
        profile_spec = _profiler.spec()
        with _telemetry.span("cudasim.launch", **span_attrs) as sp:
            # One cycle simulation at a time per device: concurrent streams
            # interleave on the simulated timeline, not on the host heap.
            with self._launch_lock:
                runs = run_sms(
                    self.props, self.policy, self.gmem, lk, values,
                    block, grid, assignments, resident,
                    engine=self.sm_engine, trace=trace,
                    fastpath=self.fastpath_mode, profile=profile_spec,
                )
            for run in runs:
                end = max(end, run.end_cycle)
                stats.merge(run.stats)
                per_sm.append(run.stats)
            stats.cycles = end
            sp.set(
                cycles=end,
                warp_instructions=stats.warp_instructions,
                transactions=stats.memory.transactions,
            )
        profile = None
        if profile_spec is not None:
            from .profiler import KernelProfile

            profile = KernelProfile.from_runs(
                lk, runs, self.props, self.toolchain, grid, block, end,
                occ, stats,
            )
        result = LaunchResult(
            kernel_name=lk.name,
            grid=grid,
            block=block,
            cycles=end,
            stats=stats,
            occupancy=occ,
            device=self.props,
            sm_stats=per_sm,
            profile=profile,
        )
        if profile is not None:
            session = _profiler.get()
            if session is not None:
                session.record(profile)
        _telemetry.record_launch(result)
        return result

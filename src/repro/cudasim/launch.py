"""Host-side driver API: compile, allocate, copy, launch.

:class:`Device` is the simulator's answer to the CUDA runtime: it owns the
global memory, the toolchain (whose coalescing policy the paper varies),
and kernel launches.  :func:`compile_kernel` is the "nvcc" stage — it runs
the transform pipeline (LICM, unrolling, peephole), lowers, and allocates
registers, producing the per-thread register count that the occupancy
calculator consumes at launch time.

Example::

    dev = Device(toolchain=Toolchain.CUDA_1_0)
    lk = compile_kernel(kernel, unroll="full", licm=True)
    buf = dev.malloc(layout.size_bytes)
    dev.memcpy_htod(buf, layout.pack(arrays))
    result = dev.launch(lk, grid=313, block=128, params={"pos": buf, "n": n})
    print(result.stats.summary(), result.time_ms)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Union

import numpy as np

from ..core.coalescing import CoalescingPolicy, policy_for
from ..telemetry import runtime as _telemetry
from .device import DeviceProperties, G8800GTX, Toolchain
from .errors import LaunchError
from .executor import SMExecutor
from .ir import Kernel
from .lower import LoweredKernel, lower
from .memory import DevicePtr, GlobalMemory
from .occupancy import OccupancyResult, occupancy
from .profiler import KernelStats
from .regalloc import allocate
from .transforms import (
    eliminate_dead_code,
    fold_constants,
    hoist_invariants,
    unroll_loops,
)

__all__ = ["Device", "LaunchResult", "compile_kernel"]

#: Default simulated heap: big enough for a million 32-byte records plus
#: headroom, small enough to allocate instantly on the host.
DEFAULT_HEAP_BYTES = 192 * 1024 * 1024


def compile_kernel(
    kernel: Kernel,
    unroll: Union[int, str, None] = None,
    licm: bool = False,
    dce: bool = True,
    max_registers: int | None = None,
    validate: bool = False,
) -> LoweredKernel:
    """Lower a kernel through the optimization pipeline.

    ``unroll`` overrides the innermost-loop pragma (``"full"`` or a
    factor); ``licm`` enables invariant code motion (the paper's manual
    optimization); ``dce`` runs constant folding + dead-code elimination
    afterwards; ``validate`` runs the static checker first
    (:mod:`repro.cudasim.validation`) and raises on error-level issues.
    Register allocation runs last so ``reg_count`` reflects the
    optimized code.
    """
    if validate:
        from .validation import check_or_raise

        check_or_raise(kernel)
    k = kernel
    if licm:
        k = hoist_invariants(k)
    k = unroll_loops(k, override=unroll)
    lk = lower(k)
    if dce:
        fold_constants(lk)
        eliminate_dead_code(lk)
    allocate(lk, max_registers=max_registers)
    return lk


@dataclass
class LaunchResult:
    """Outcome of one simulated kernel launch."""

    kernel_name: str
    grid: int
    block: int
    cycles: float
    stats: KernelStats
    occupancy: OccupancyResult
    device: DeviceProperties = field(repr=False, default=G8800GTX)
    #: Per-SM counter snapshots, index-aligned with ``stats.sm_cycles``
    #: (only SMs that received blocks appear).  The timeline exporter
    #: reads these to draw one slice + memory-pipe track per SM.
    sm_stats: list[KernelStats] = field(repr=False, default_factory=list)

    @property
    def time_s(self) -> float:
        return self.device.cycles_to_seconds(self.cycles)

    @property
    def time_ms(self) -> float:
        return 1e3 * self.time_s


class Device:
    """A simulated GPU + driver of a given CUDA toolchain revision."""

    def __init__(
        self,
        props: DeviceProperties = G8800GTX,
        toolchain: Toolchain = Toolchain.CUDA_1_0,
        heap_bytes: int = DEFAULT_HEAP_BYTES,
    ) -> None:
        self.props = props
        self.toolchain = toolchain
        self.policy: CoalescingPolicy = policy_for(toolchain)
        self.gmem = GlobalMemory(min(heap_bytes, props.global_mem_bytes))

    # -- memory management ---------------------------------------------------

    def malloc(self, nbytes: int) -> DevicePtr:
        return self.gmem.alloc(nbytes)

    def free(self, ptr: DevicePtr) -> None:
        self.gmem.free(ptr)

    def reset(self) -> None:
        self.gmem.reset()

    def memcpy_htod(self, ptr: DevicePtr | int, data: np.ndarray) -> None:
        self.gmem.write(ptr, data)

    def memcpy_dtoh(self, ptr: DevicePtr | int, nwords: int) -> np.ndarray:
        return self.gmem.read(ptr, nwords)

    # -- launching ---------------------------------------------------------------

    def launch(
        self,
        lk: LoweredKernel,
        grid: int,
        block: int,
        params: Mapping[str, object] | None = None,
        sm_count: int | None = None,
        max_resident_blocks: int | None = None,
        trace=None,
    ) -> LaunchResult:
        """Cycle-simulate a 1-D launch.

        ``sm_count`` restricts the simulation to that many SMs (used by
        the hybrid timing mode to measure one representative SM);
        ``max_resident_blocks`` overrides the occupancy calculator (for
        what-if experiments); ``trace`` is an optional
        :class:`repro.cudasim.trace.TraceRecorder`-style hook invoked on
        every global access.  Launch time is ``max`` over the SMs'
        finish cycles.
        """
        if grid <= 0:
            raise LaunchError(f"grid must be positive, got {grid}")
        occ = occupancy(
            self.props, block, max(1, lk.reg_count), 4 * lk.shared_words
        )
        resident = max_resident_blocks or occ.blocks_per_sm
        n_sms = min(sm_count or self.props.num_sms, self.props.num_sms, grid)

        values = dict(params or {})
        missing = set(lk.kernel.params) - set(values)
        if missing:
            raise LaunchError(f"missing kernel parameters: {sorted(missing)}")
        for name, v in values.items():
            if isinstance(v, DevicePtr):
                values[name] = int(v)

        stats = KernelStats()
        per_sm: list[KernelStats] = []
        end = 0.0
        with _telemetry.span(
            "cudasim.launch", kernel=lk.name, grid=grid, block=block
        ) as sp:
            for sm in range(n_sms):
                block_ids = list(range(sm, grid, n_sms))
                if not block_ids:
                    continue
                sm_stats = KernelStats()
                ex = SMExecutor(
                    device=self.props,
                    policy=self.policy,
                    gmem=self.gmem,
                    lk=lk,
                    params=values,
                    block_dim=block,
                    grid_dim=grid,
                    stats=sm_stats,
                    trace=trace,
                    sm_index=sm,
                )
                end = max(end, ex.run(block_ids, resident))
                sm_stats.memory.merge(ex.pipeline.stats)
                stats.merge(sm_stats)
                per_sm.append(sm_stats)
            stats.cycles = end
            sp.set(
                cycles=end,
                warp_instructions=stats.warp_instructions,
                transactions=stats.memory.transactions,
            )
        result = LaunchResult(
            kernel_name=lk.name,
            grid=grid,
            block=block,
            cycles=end,
            stats=stats,
            occupancy=occ,
            device=self.props,
            sm_stats=per_sm,
        )
        _telemetry.record_launch(result)
        return result

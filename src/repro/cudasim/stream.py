"""CUDA-streams-style asynchronous work queues over :class:`Device`.

A :class:`Stream` is a FIFO of device operations — async copies, kernel
launches, event records — executed by a dedicated worker thread so the
host (the experiment driver) can keep enqueuing the next configuration
while the previous one simulates.  Ordering semantics mirror CUDA:

* operations on one stream run in submission order;
* :meth:`Stream.record_event` marks a point in a stream, and
  :meth:`Stream.wait_event` on another stream blocks that stream's queue
  until the point is reached — cross-stream dependencies without a full
  device synchronize;
* :meth:`Stream.synchronize` / :meth:`Device.synchronize` drain the
  queue(s) and re-raise the first failure.

Each stream also keeps a *simulated* timeline cursor, in device cycles:
copies advance it by their modeled PCIe transfer time, launches by the
launch's simulated cycle count, and ``wait_event`` advances it to the
waited-for event's cycle.  The cursor feeds the telemetry spans
(``stream=<name>`` attribute) so the Chrome trace shows per-stream
tracks with overlap, and :attr:`Stream.cycles` gives the stream's total
simulated makespan for back-of-envelope overlap math.

Failure poisoning follows CUDA's sticky-error model: once an operation
raises, the stream refuses further work and every subsequent
``result()`` / ``synchronize()`` re-raises :class:`StreamError` wrapping
the original fault.

Example::

    with dev.stream("sweep-aos") as s:
        s.memcpy_htod_async(buf, packed)
        h = s.launch_async(lk, grid=313, block=128, params={"pos": buf})
        done = s.record_event()
    other.wait_event(done)           # gate another stream on this work
    result = h.result()              # blocks until the launch simulated
"""

from __future__ import annotations

import concurrent.futures
import itertools
import threading
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from ..telemetry import runtime as _telemetry
from .errors import GraphCaptureError, StreamError
from .memory import DevicePtr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import LaunchGraph
    from .launch import Device, LaunchResult
    from .lower import LoweredKernel

__all__ = ["Stream", "Event", "PCIE_BYTES_PER_S"]

#: Distinguishes "argument not passed" from an explicit ``timeout=None``
#: (wait forever) on :meth:`Stream.wait_event`.
_UNSET = object()

#: Modeled host↔device bandwidth (PCIe x16 gen1, the 8800 GTX's bus) used
#: to place async copies on the simulated timeline.
PCIE_BYTES_PER_S = 3.0e9

_stream_counter = itertools.count()


class Event:
    """A marker in a stream's queue, usable as a cross-stream dependency.

    ``cycle`` is the recording stream's simulated-timeline position at
    the moment the marker executed (``None`` until then).
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name or f"event{next(_stream_counter)}"
        self.cycle: float | None = None
        self._fired = threading.Event()

    def query(self) -> bool:
        """True once the recording stream has reached the marker."""
        return self._fired.is_set()

    def synchronize(self, timeout: float | None = None) -> None:
        """Block the *host* until the marker executes."""
        if not self._fired.wait(timeout):
            raise StreamError(f"timed out waiting for event {self.name!r}")

    def _fire(self, cycle: float) -> None:
        self.cycle = cycle
        self._fired.set()


class Stream:
    """An ordered, asynchronous queue of device operations.

    Create via :meth:`Device.stream`.  Every ``*_async`` method returns a
    :class:`concurrent.futures.Future`; ``result()`` blocks until that
    operation has simulated and yields the operation's value
    (:class:`LaunchResult` for launches, the host array for
    device-to-host copies, ``None`` for host-to-device copies).
    """

    def __init__(self, device: "Device", name: str | None = None) -> None:
        self.device = device
        self.name = name or f"stream{next(_stream_counter)}"
        #: Simulated cycle at which the last enqueued op completes.
        self.cycles = 0.0
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"cudasim-{self.name}"
        )
        self._error: BaseException | None = None
        self._pending: list[concurrent.futures.Future] = []
        self._lock = threading.Lock()
        self._closed = False
        self._depth = 0
        #: Active LaunchGraph recording this stream's ops (None = normal).
        self._capture: "LaunchGraph | None" = None

    # -- queue plumbing ----------------------------------------------------

    @property
    def depth(self) -> int:
        """Submitted-but-unfinished operations (the queue-depth gauge)."""
        return self._depth

    def _set_depth_gauge(self) -> None:
        _telemetry.set_gauge(
            "cudasim.stream.depth",
            self._depth,
            device=getattr(self.device, "name", None) or "device",
            stream=self.name,
        )

    def _on_op_done(self, fut: concurrent.futures.Future) -> None:
        with self._lock:
            self._depth -= 1
            if fut.cancelled():
                # A future cancelled before its queue entry ran must leave
                # the FIFO, or synchronize() chokes on a corpse that never
                # produced a result (and the list grows without bound).
                try:
                    self._pending.remove(fut)
                except ValueError:
                    pass
        self._set_depth_gauge()

    def _submit(
        self, label: str, fn: Callable[[], object], **attrs
    ) -> concurrent.futures.Future:
        with self._lock:
            if self._capture is not None:
                raise GraphCaptureError(
                    f"stream {self.name!r} is capturing into graph "
                    f"{self._capture.name!r}; '{label}' is not capturable "
                    "(its result is consumed on the host)"
                )
            if self._closed:
                raise StreamError(f"stream {self.name!r} is closed")
            if self._error is not None:
                raise StreamError(
                    f"stream {self.name!r} aborted by an earlier failure"
                ) from self._error
            try:
                fut = self._pool.submit(self._run_op, label, fn, attrs)
            except RuntimeError as exc:
                # close()/__exit__ shut the pool between our _closed check
                # and this submit (or an interpreter-shutdown hook did).
                # Surface the stream-API error, not the executor's.
                self._closed = True
                raise StreamError(
                    f"stream {self.name!r} is closed"
                ) from exc
            self._pending.append(fut)
            self._depth += 1
        fut.add_done_callback(self._on_op_done)
        self._set_depth_gauge()
        return fut

    def submit(
        self, label: str, fn: Callable[[], object], **attrs
    ) -> concurrent.futures.Future:
        """Queue an arbitrary host closure on this stream's FIFO.

        The public face of the internal queue plumbing, used by host-side
        schedulers (the simulation service) to serialize work per device:
        ``fn`` runs on the stream's worker thread after every previously
        queued operation, inside a ``cudasim.stream.<label>`` telemetry
        span carrying ``attrs``.  The returned future supports
        :meth:`~concurrent.futures.Future.cancel` while the closure is
        still queued; a cancelled entry is unregistered from the FIFO so
        :meth:`synchronize` neither deadlocks nor reports it as a stream
        failure.
        """
        return self._submit(label, fn, **attrs)

    def _run_op(self, label: str, fn: Callable[[], object], attrs: dict):
        try:
            if self._error is not None:
                raise StreamError(
                    f"stream {self.name!r} aborted by an earlier failure"
                ) from self._error
            begin = self.cycles
            span_attrs = {
                "stream": self.name,
                "device": getattr(self.device, "name", None) or "device",
                **attrs,  # caller attrs win (e.g. service job spans)
            }
            with _telemetry.span(
                f"cudasim.stream.{label}", **span_attrs
            ) as sp:
                value = fn()
                sp.set(sim_begin_cycle=begin, sim_end_cycle=self.cycles)
            return value
        except BaseException as exc:
            # First fault wins: ops draining behind a failure raise the
            # abort StreamError above, which must not replace the root
            # cause that synchronize() re-raises (sticky-error model).
            if self._error is None:
                self._error = exc
            raise

    def _copy_cycles(self, nbytes: int) -> float:
        seconds = nbytes / PCIE_BYTES_PER_S
        return seconds * self.device.props.clock_mhz * 1e6

    # -- operations --------------------------------------------------------

    def memcpy_htod_async(
        self, ptr: DevicePtr | int, data: np.ndarray, tag: str | None = None
    ) -> concurrent.futures.Future:
        """Queue a host→device copy (advances the timeline by PCIe time).

        ``tag`` names the copy for parameter rebinding when a
        :class:`~repro.cudasim.graph.LaunchGraph` capture is active; it
        is ignored in normal (non-capturing) execution.
        """
        data = np.ascontiguousarray(data)
        if self._capture is not None:
            return self._capture._record_htod(self, ptr, data, tag)

        def op() -> None:
            self.device.memcpy_htod(ptr, data)
            self.cycles += self._copy_cycles(data.nbytes)

        return self._submit("memcpy_htod", op, nbytes=int(data.nbytes))

    def memcpy_dtoh_async(
        self, ptr: DevicePtr | int, nwords: int
    ) -> concurrent.futures.Future:
        """Queue a device→host copy; ``result()`` is the host array."""

        def op() -> np.ndarray:
            out = self.device.memcpy_dtoh(ptr, nwords)
            self.cycles += self._copy_cycles(out.nbytes)
            return out

        return self._submit("memcpy_dtoh", op, nbytes=4 * nwords)

    def launch_async(
        self,
        lk: "LoweredKernel",
        grid: int,
        block: int,
        params: Mapping[str, object] | None = None,
        tag: str | None = None,
        **kwargs,
    ) -> concurrent.futures.Future:
        """Queue a kernel launch; ``result()`` is its :class:`LaunchResult`.

        ``tag`` names the launch for parameter rebinding when a
        :class:`~repro.cudasim.graph.LaunchGraph` capture is active; it
        is ignored in normal (non-capturing) execution.
        """
        if self._capture is not None:
            return self._capture._record_launch(
                self, lk, grid, block, params, tag, kwargs
            )

        def op() -> "LaunchResult":
            result = self.device.launch(
                lk, grid, block, params=params, stream=self.name, **kwargs
            )
            self.cycles += result.cycles
            return result

        return self._submit(
            "launch", op, kernel=lk.name, grid=grid, block=block
        )

    def record_event(self, event: Event | None = None) -> Event:
        """Queue a marker; it fires when all prior ops on this stream ran."""
        ev = event or Event()
        if self._capture is not None:
            self._capture._record_record(self, ev)
            return ev
        self._submit("record_event", lambda: ev._fire(self.cycles),
                     event=ev.name)
        return ev

    def memcpy_peer_async(
        self,
        src: DevicePtr | int,
        dst_device: "Device",
        dst: DevicePtr | int,
        nwords: int,
        via_host: bool = False,
    ) -> concurrent.futures.Future:
        """Queue a device→device copy into another device's heap.

        Models ``cudaMemcpyPeerAsync``: ``nwords`` are read from ``src``
        on this stream's device and written to ``dst`` on ``dst_device``.
        The simulated timeline advances by one PCIe traversal when the
        devices are peer-capable, or two (device→host→device staging,
        ``via_host=True``) when they are not — the classic cost of
        forgetting ``cudaDeviceEnablePeerAccess``.
        """
        nbytes = 4 * nwords
        hops = 2 if via_host else 1
        if self._capture is not None:
            return self._capture._record_peer(
                self, src, dst_device, dst, nwords, hops
            )

        def op() -> None:
            data = self.device.memcpy_dtoh(src, nwords)
            dst_device.memcpy_htod(dst, data)
            self.cycles += hops * self._copy_cycles(nbytes)

        return self._submit(
            "memcpy_peer",
            op,
            nbytes=nbytes,
            via_host=via_host,
            dst_device=getattr(dst_device, "name", None) or "device",
        )

    def wait_event(self, event: Event, timeout: object = _UNSET) -> None:
        """Make all *later* ops on this stream wait for ``event``.

        Returns immediately (the wait itself is queued).  The stream's
        timeline jumps forward to the event's cycle, modeling the idle
        gap.  ``timeout`` (host seconds) guards against waiting on an
        event that is never recorded; it defaults to the device's
        ``event_timeout`` (60 s unless ``Device(event_timeout=...)`` or
        ``REPRO_EVENT_TIMEOUT`` says otherwise), and ``None`` or ``inf``
        waits forever.
        """
        if self._capture is not None:
            self._capture._record_wait(self, event)
            return
        if timeout is _UNSET:
            timeout = self.device.event_timeout
        if timeout is not None and timeout == float("inf"):
            timeout = None  # threading caps finite timeouts; inf = forever

        def op() -> None:
            if not event._fired.wait(timeout):
                raise StreamError(
                    f"stream {self.name!r} timed out waiting for event "
                    f"{event.name!r} after {timeout}s (was it recorded? "
                    "raise Device(event_timeout=) or REPRO_EVENT_TIMEOUT "
                    "for legitimately slow upstream streams)"
                )
            self.cycles = max(self.cycles, event.cycle or 0.0)

        self._submit("wait_event", op, event=event.name)

    # -- completion --------------------------------------------------------

    def synchronize(self) -> None:
        """Block until every queued op ran; re-raise the first failure.

        The error is *sticky*, as in CUDA: once any operation on this
        stream has failed, every subsequent ``synchronize()`` re-raises
        :class:`StreamError` wrapping the original fault — not just the
        call that happens to drain the failed future — until the stream
        is torn down.
        """
        with self._lock:
            pending, self._pending = self._pending, []
        failure: BaseException | None = None
        for fut in pending:
            try:
                fut.result()
            except concurrent.futures.CancelledError:
                # A host-cancelled op never ran on the device; it is not
                # a stream failure and must not poison the queue.
                continue
            except BaseException as exc:
                if failure is None:
                    failure = exc
        if failure is None:
            # Nothing newly drained, but the stream may already be
            # poisoned from an earlier drain — sticky-error model.
            failure = self._error
        if failure is not None:
            raise StreamError(
                f"stream {self.name!r} failed: {failure}"
            ) from failure

    def _unregister(self) -> None:
        try:
            self.device._streams.remove(self)
        except ValueError:
            pass

    def close(self) -> None:
        """Drain the queue and release the worker thread."""
        try:
            self.synchronize()
        finally:
            # _closed flips under the same lock _submit checks it under,
            # so a racing submitter either lands before the shutdown or
            # sees the closed stream — never the executor's RuntimeError.
            with self._lock:
                self._closed = True
            self._pool.shutdown(wait=True)
            self._unregister()

    def __enter__(self) -> "Stream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:  # don't mask the in-flight exception with a drain failure
            with self._lock:
                self._closed = True
            self._pool.shutdown(wait=False, cancel_futures=True)
            # The aborted stream must still leave the device registry, or
            # Device.synchronize() keeps draining a closed stream and the
            # list grows without bound across failed sweeps.
            self._unregister()

    # -- graph capture ------------------------------------------------------

    def _begin_capture(self, graph: "LaunchGraph") -> None:
        """Route this stream's capturable ops into ``graph`` (internal —
        use :meth:`LaunchGraph.begin` / :meth:`DeviceGroup.capture`)."""
        with self._lock:
            if self._closed:
                raise GraphCaptureError(
                    f"cannot capture on closed stream {self.name!r}"
                )
            if self._error is not None:
                raise GraphCaptureError(
                    f"cannot capture on poisoned stream {self.name!r}"
                ) from self._error
            if self._capture is not None:
                raise GraphCaptureError(
                    f"stream {self.name!r} is already capturing into "
                    f"graph {self._capture.name!r}"
                )
            self._capture = graph

    def _end_capture(self, graph: "LaunchGraph") -> None:
        with self._lock:
            if self._capture is graph:
                self._capture = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"{len(self._pending)} queued"
        return f"Stream({self.name!r}, {state}, cycles={self.cycles:.0f})"

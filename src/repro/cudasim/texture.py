"""Per-SM texture cache (the read-only path of Sec. I-A's footnote).

The G80's only cached access to DRAM is through the texture (and
constant) units — "caches aren't existent except for a small texture-
and constant cache", as the paper puts it.  2008-era n-body codes used
``tex1Dfetch`` as the alternative to shared-memory staging, which is why
the ablation experiment models it.

Model: a direct-mapped cache of ``tex_cache_bytes`` with
``tex_line_bytes`` lines.  A warp access checks its unique lines; hits
cost ``tex_hit_latency`` (the texture unit is pipelined but long), each
miss fetches one line through the SM's DRAM pipeline at full latency and
fills the cache.  No coherence: texture reads in real CC 1.x are
undefined with respect to same-kernel writes, and the simulator's
functional read goes straight to global memory (writes-then-tex-reads
within one launch behave "coherently" functionally but carry a
validation warning — see :mod:`repro.cudasim.validation`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.transactions import MemoryTransaction
from .device import DeviceProperties
from .pipeline import MemoryPipeline

__all__ = ["TextureCacheStats", "TextureCache"]


@dataclass
class TextureCacheStats:
    accesses: int = 0
    line_lookups: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        if self.line_lookups == 0:
            return 0.0
        return self.hits / self.line_lookups

    def merge(self, other: "TextureCacheStats") -> None:
        self.accesses += other.accesses
        self.line_lookups += other.line_lookups
        self.hits += other.hits
        self.misses += other.misses


class TextureCache:
    """Direct-mapped, per-SM, read-only."""

    def __init__(self, device: DeviceProperties, pipeline: MemoryPipeline):
        self.device = device
        self.pipeline = pipeline
        self.line_bytes = device.tex_line_bytes
        self.n_lines = max(1, device.tex_cache_bytes // self.line_bytes)
        self.hit_latency = device.tex_hit_latency
        # tag[i] = base address of the line cached in slot i, or -1.
        self.tags = np.full(self.n_lines, -1, dtype=np.int64)
        self.stats = TextureCacheStats()

    def _slot(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.n_lines

    def access(
        self, byte_addrs: np.ndarray, width: int, now: float
    ) -> float:
        """One warp texture fetch; returns the data-ready cycle."""
        self.stats.accesses += 1
        lines: set[int] = set()
        for a in np.asarray(byte_addrs, dtype=np.int64):
            first = (int(a) // self.line_bytes) * self.line_bytes
            last = ((int(a) + width - 1) // self.line_bytes) * self.line_bytes
            lines.add(first)
            if last != first:
                lines.add(last)
        ready = now + self.hit_latency
        misses: list[int] = []
        for line in sorted(lines):
            self.stats.line_lookups += 1
            slot = self._slot(line)
            if self.tags[slot] == line:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
                misses.append(line)
                self.tags[slot] = line
        if misses:
            txs = [
                MemoryTransaction(line, self.line_bytes)
                if self.line_bytes in (32, 64, 128)
                else MemoryTransaction(line, 32)
                for line in misses
            ]
            # Miss fill: DRAM round trip through the ordinary pipe, plus
            # the texture unit's own pipeline on top.
            fill = self.pipeline.request(txs, now, 4, is_load=True)
            ready = max(ready, fill + self.hit_latency)
        return ready

    def invalidate(self) -> None:
        self.tags[:] = -1

"""Liveness dataflow analysis on lowered instruction streams.

Classic backward may-analysis over the basic-block CFG, producing:

* per-instruction live-out sets,
* the maximum register pressure (the quantity nvcc's ``-maxrregcount``
  fights with, and the paper's Sec. IV-A lever: unrolling frees the loop
  iterator, invariant code motion frees one more),
* live-in at kernel entry (non-empty live-in means use-before-def, which
  the register allocator reports as an IR bug).

Predicate registers are analyzed in the same framework but reported
separately — they live in the predicate file and do not count against the
occupancy register budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from .isa import Instr, Op, Reg
from .lower import LoweredKernel

__all__ = ["BasicBlock", "LivenessInfo", "build_blocks", "analyze"]


@dataclass
class BasicBlock:
    start: int  # index of first instruction
    end: int  # one past last instruction
    succs: list[int]  # successor block start indices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BB[{self.start}:{self.end}]->{self.succs}"


def build_blocks(lk: LoweredKernel) -> dict[int, BasicBlock]:
    """Partition the instruction stream into basic blocks keyed by start."""
    n = len(lk.instructions)
    leaders = {0, n}
    for i, ins in enumerate(lk.instructions):
        if ins.op is Op.BRA:
            leaders.add(lk.targets[ins.target])
            leaders.add(i + 1)
        elif ins.op is Op.EXIT:
            leaders.add(i + 1)
    starts = sorted(s for s in leaders if s < n)
    blocks: dict[int, BasicBlock] = {}
    bounds = starts + [n]
    for bi, start in enumerate(starts):
        end = bounds[bi + 1]
        last = lk.instructions[end - 1]
        succs: list[int] = []
        if last.op is Op.BRA:
            succs.append(lk.targets[last.target])
            if last.pred is not None and end < n:
                succs.append(end)
        elif last.op is Op.EXIT:
            if last.pred is not None and end < n:
                succs.append(end)
        elif end < n:
            succs.append(end)
        # A branch target of len(instructions) means "branch to end": no succ.
        succs = [s for s in succs if s < n]
        blocks[start] = BasicBlock(start, end, succs)
    return blocks


@dataclass
class LivenessInfo:
    """Results of the dataflow analysis."""

    live_out: list[frozenset[Reg]]  # per instruction index
    live_in_entry: frozenset[Reg]
    max_pressure: int  # peak simultaneously-live data registers
    max_pred_pressure: int

    def pressure_at(self, index: int) -> int:
        return sum(1 for r in self.live_out[index] if not r.is_predicate)


def _use_def(ins: Instr) -> tuple[set[Reg], set[Reg]]:
    uses = set(ins.reads())
    defs = set(ins.writes())
    # A predicated instruction may leave its destination unchanged, so the
    # old value stays live: model the def as also being a use.
    if ins.pred is not None and defs:
        uses |= defs
    return uses, defs


def analyze(lk: LoweredKernel) -> LivenessInfo:
    """Iterate block-level liveness to a fixed point, then expand."""
    blocks = build_blocks(lk)
    ins_list = lk.instructions

    # Block-local use (upward-exposed) and def summaries.
    block_use: dict[int, set[Reg]] = {}
    block_def: dict[int, set[Reg]] = {}
    for start, bb in blocks.items():
        use: set[Reg] = set()
        defs: set[Reg] = set()
        for i in range(bb.start, bb.end):
            u, d = _use_def(ins_list[i])
            use |= u - defs
            defs |= d
        block_use[start] = use
        block_def[start] = defs

    live_in: dict[int, set[Reg]] = {s: set() for s in blocks}
    live_out_blk: dict[int, set[Reg]] = {s: set() for s in blocks}
    changed = True
    while changed:
        changed = False
        for start in sorted(blocks, reverse=True):
            bb = blocks[start]
            out: set[Reg] = set()
            for s in bb.succs:
                out |= live_in[s]
            new_in = block_use[start] | (out - block_def[start])
            if out != live_out_blk[start] or new_in != live_in[start]:
                live_out_blk[start] = out
                live_in[start] = new_in
                changed = True

    # Per-instruction live-out by backward walk inside each block.
    live_out: list[frozenset[Reg]] = [frozenset()] * len(ins_list)
    max_pressure = 0
    max_pred = 0
    for start, bb in blocks.items():
        live = set(live_out_blk[start])
        for i in range(bb.end - 1, bb.start - 1, -1):
            live_out[i] = frozenset(live)
            u, d = _use_def(ins_list[i])
            live -= d
            live |= u
            data = sum(1 for r in live if not r.is_predicate)
            preds = len(live) - data
            max_pressure = max(max_pressure, data)
            max_pred = max(max_pred, preds)
    entry = frozenset(live_in.get(0, set()))
    return LivenessInfo(
        live_out=live_out,
        live_in_entry=entry,
        max_pressure=max_pressure,
        max_pred_pressure=max_pred,
    )

"""Host↔device transfer pipeline: tile plans, staging, overlap stats.

The out-of-core subsystem.  :class:`TilePlan` cuts a layout's rows into
minimal byte bundles (via ``MemoryLayout.row_regions``),
:class:`StagingBuffer` holds the ping-pong device slots they stream
through, :class:`TransferPipeline` overlaps each tile's upload with the
previous tile's compute using cross-stream events, and
:class:`XferStats` turns the event timestamps into the copy-exposed
fraction the benchmarks report.
"""

from .plan import REGION_SLOT_ALIGN, TilePlan, TileSpec
from .staging import StagingBuffer
from .pipeline import TransferPipeline
from .stats import CopyRecord, TileRecord, XferStats

__all__ = [
    "REGION_SLOT_ALIGN",
    "TilePlan",
    "TileSpec",
    "StagingBuffer",
    "TransferPipeline",
    "XferStats",
    "TileRecord",
    "CopyRecord",
]

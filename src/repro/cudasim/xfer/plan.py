"""Tile plans: cutting a layout's row space into shippable byte bundles.

Out-of-core execution streams *row tiles* of a population through small
device staging buffers.  What a tile physically ships depends on the
memory layout: :meth:`~repro.core.layouts.MemoryLayout.row_regions`
merges the per-step byte spans of rows ``[lo, hi)`` into minimal
word-aligned intervals, so grouped layouts (soa/soaoas) ship only the
requested field group while interleaved layouts (aos/aoas) drag whole
records along — the same copy-overhead asymmetry the multi-GPU broadcast
measures, now on the host↔device bus.

A :class:`TilePlan` assigns each merged interval a *slot-relative*
offset: the staging buffer holds the compacted concatenation of a tile's
intervals, and :meth:`TilePlan.step_offsets` translates every layout
load step into the ``(slot_offset, extent)`` pair the kernel's
base-pointer parameter must receive.  Because every layout in this
package is affine with an *n-independent* stride, the same compiled
kernel reads a full-population buffer or a compacted tile slot — only
the base pointers change, which is what keeps the streamed results
bit-identical to the in-core path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ...core.layouts import MemoryLayout

__all__ = ["TileSpec", "TilePlan", "REGION_SLOT_ALIGN"]

#: Slot-relative region starts are rounded up to this many bytes so a
#: float4 load step compacted behind an odd-sized neighbour never loses
#: its natural alignment inside the staging buffer.
REGION_SLOT_ALIGN = 16


def _align_up(value: int, align: int) -> int:
    return -(-value // align) * align


@dataclass(frozen=True)
class TileSpec:
    """One row tile: which rows it covers and which bytes it ships.

    ``regions`` holds ``(layout_offset, nbytes, slot_offset)`` triples:
    the merged interval's byte offset in the full layout image, its
    length, and where it lands inside a staging slot.
    """

    index: int
    lo: int
    hi: int
    regions: tuple[tuple[int, int, int], ...]
    nbytes: int  #: payload bytes shipped (sum of region lengths)

    @property
    def rows(self) -> int:
        return self.hi - self.lo


class TilePlan:
    """Cut ``layout``'s ``n`` rows into tiles of ``tile_rows`` rows.

    ``fields`` restricts the shipped bytes to the steps covering those
    fields (``None`` ships the whole record) — the force pipeline ships
    only the posmass group, the resident row slice ships everything.
    The last tile is short when ``tile_rows`` does not divide ``n``.
    """

    def __init__(
        self,
        layout: MemoryLayout,
        tile_rows: int,
        fields: Sequence[str] | None = None,
    ) -> None:
        if tile_rows < 1:
            raise ValueError(f"tile_rows must be >= 1, got {tile_rows}")
        self.layout = layout
        self.tile_rows = min(int(tile_rows), layout.n)
        self.fields = tuple(fields) if fields is not None else None
        tiles: list[TileSpec] = []
        slot_bytes = 0
        for index, lo in enumerate(range(0, layout.n, self.tile_rows)):
            hi = min(lo + self.tile_rows, layout.n)
            regions: list[tuple[int, int, int]] = []
            cursor = 0
            for offset, nbytes in layout.row_regions(lo, hi, self.fields):
                regions.append((offset, nbytes, cursor))
                cursor += _align_up(nbytes, REGION_SLOT_ALIGN)
            tiles.append(
                TileSpec(
                    index=index,
                    lo=lo,
                    hi=hi,
                    regions=tuple(regions),
                    nbytes=sum(nb for _, nb, _ in regions),
                )
            )
            slot_bytes = max(slot_bytes, cursor)
        self.tiles = tuple(tiles)
        #: Bytes one staging slot needs to hold any tile of this plan.
        self.slot_bytes = slot_bytes

    def __len__(self) -> int:
        return len(self.tiles)

    def __iter__(self) -> Iterator[TileSpec]:
        return iter(self.tiles)

    @property
    def total_bytes(self) -> int:
        """Payload bytes shipped when every tile streams through once."""
        return sum(t.nbytes for t in self.tiles)

    def step_offsets(
        self, tile: TileSpec, fields: Sequence[str] | None = None
    ) -> tuple[tuple[int, int], ...]:
        """Per-step ``(slot_offset, extent)`` for a kernel reading ``tile``.

        One pair per step of ``layout.read_plan(fields)`` (default: this
        plan's own field subset), in plan order.  A kernel indexing the
        tile with local row ``j`` must receive ``slot_base + slot_offset``
        for the step's base-pointer parameter; ``extent`` bounds the
        pointer to exactly the rows the slot holds.  Raises
        :class:`LookupError` if a step's span is not covered by the
        tile's shipped regions (asking for fields the plan never shipped).
        """
        if fields is None:
            fields = self.fields
        out: list[tuple[int, int]] = []
        for step in self.layout.read_plan(fields):
            span_start = step.base + step.stride * tile.lo
            extent = step.stride * (tile.rows - 1) + step.vector.nbytes
            for offset, nbytes, slot_offset in tile.regions:
                if offset <= span_start and span_start + extent <= offset + nbytes:
                    out.append((slot_offset + span_start - offset, extent))
                    break
            else:
                raise LookupError(
                    f"step {step} of rows [{tile.lo}, {tile.hi}) is not "
                    "covered by the tile's shipped regions — was the plan "
                    "built for a narrower field subset?"
                )
        return tuple(out)

    def host_views(self, tile: TileSpec, image):
        """``(slot_offset, words)`` pairs: what to copy from a packed image.

        ``image`` is the full layout's float32 word image (the host
        system of record); each yielded view is the word slice backing
        one merged region, ready for ``memcpy_htod_async`` into the
        staging slot at ``slot_offset``.
        """
        for offset, nbytes, slot_offset in tile.regions:
            yield slot_offset, image[offset // 4 : (offset + nbytes) // 4]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TilePlan({self.layout.kind}, n={self.layout.n}, "
            f"tile_rows={self.tile_rows}, tiles={len(self.tiles)}, "
            f"slot_bytes={self.slot_bytes})"
        )

"""Ping-pong staging buffers carved from the device freelist heap.

A :class:`StagingBuffer` owns ``slots`` equally-sized device
allocations (two by default — the classic ping-pong pair).  The
transfer pipeline uploads tile *k+1* into one slot while the compute
stream still reads tile *k* out of the other; slot reuse is gated by
the pipeline's consumed-events, not by this class.  Allocations go
through :meth:`Device.malloc`, i.e. the PR 3 first-fit freelist, so
staging capacity shows up in the same heap accounting (and OOM
behaviour) as every other buffer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..launch import Device
    from ..memory import DevicePtr

__all__ = ["StagingBuffer"]


class StagingBuffer:
    """``slots`` device buffers of ``nbytes`` each, freed as a unit."""

    def __init__(self, device: "Device", nbytes: int, slots: int = 2) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if nbytes < 4:
            raise ValueError(f"nbytes must be >= 4, got {nbytes}")
        self.device = device
        self.nbytes = int(nbytes)
        self._ptrs: list["DevicePtr"] = []
        try:
            for _ in range(slots):
                self._ptrs.append(device.malloc(self.nbytes))
        except Exception:
            self.free()
            raise

    @property
    def slots(self) -> int:
        return len(self._ptrs)

    def __len__(self) -> int:
        return len(self._ptrs)

    def slot(self, index: int) -> "DevicePtr":
        """Slot for tick ``index`` — indices rotate through the pool."""
        if not self._ptrs:
            raise RuntimeError("staging buffer already freed")
        return self._ptrs[index % len(self._ptrs)]

    def free(self) -> None:
        """Return every slot to the heap (idempotent)."""
        ptrs, self._ptrs = self._ptrs, []
        failure: BaseException | None = None
        for ptr in reversed(ptrs):
            try:
                self.device.free(ptr)
            except BaseException as exc:  # keep freeing the rest
                failure = failure or exc
        if failure is not None:
            raise failure

    def __enter__(self) -> "StagingBuffer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.free()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StagingBuffer(slots={len(self._ptrs)}, nbytes={self.nbytes}, "
            f"device={getattr(self.device, 'name', '?')})"
        )

"""Double-buffered host↔device transfer pipeline.

:class:`TransferPipeline` overlaps tile uploads with tile compute the
way production CUDA codes do: a dedicated *copy* stream prefetches tile
*k+1* into one staging slot with ``memcpy_htod_async`` while the
*compute* stream consumes tile *k* out of the other, the two ordered
only by ``record_event``/``wait_event`` on the simulated timeline.

Event choreography per :meth:`stage` call (slot = tick % slots)::

    copy stream:     wait consumed[slot]   # compute done with old tenant
                     ev_a ─ upload ─ ev_b
    compute stream:  wait ev_b             # tile bytes resident
                     ev_c ─ compute ─ ev_d
    consumed[slot] = ev_d                  # gates slot reuse, 2 ticks on

``prev_d`` — the compute stream's position when the upload was enqueued
(the previous tile's ``ev_d``, or a :meth:`mark` reference) — is what
:class:`~repro.cudasim.xfer.stats.XferStats` compares ``ev_c`` against:
any gap is copy latency the prefetch failed to hide.

The host callables passed to :meth:`stage` only *enqueue* stream ops
(they run on the calling thread); the streams execute them
asynchronously.  Nothing here blocks the host except
:meth:`synchronize`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .staging import StagingBuffer
from .stats import XferStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..memory import DevicePtr
    from ..stream import Event, Stream

__all__ = ["TransferPipeline"]


class TransferPipeline:
    """Stage tiles through ``staging`` slots, copy overlapped with compute."""

    def __init__(
        self,
        copy_stream: "Stream",
        compute_stream: "Stream",
        staging: StagingBuffer,
        stats: XferStats | None = None,
        event_timeout: float | None = None,
    ) -> None:
        if copy_stream is compute_stream:
            raise ValueError(
                "copy and compute must be distinct streams — a shared "
                "queue serialises the pipeline by construction"
            )
        self.copy_stream = copy_stream
        self.compute_stream = compute_stream
        self.staging = staging
        self.stats = stats if stats is not None else XferStats()
        #: Wall-clock guard on the pipeline's cross-stream waits; None
        #: defers to each stream's device default (Device(event_timeout=)
        #: / REPRO_EVENT_TIMEOUT).
        self.event_timeout = event_timeout
        self._tick = 0
        self._consumed: dict[int, "Event"] = {}
        self._prev_d: "Event | None" = None

    def _wait(self, stream: "Stream", event: "Event") -> None:
        if self.event_timeout is None:
            stream.wait_event(event)  # device-default timeout
        else:
            stream.wait_event(event, timeout=self.event_timeout)

    def mark(self) -> None:
        """Reset the exposure reference to the compute stream's *now*.

        Call between tile passes (e.g. at the top of each resident
        slice's loop) so time the compute stream spends on unrelated
        work — integrations, resident uploads — is not miscounted as
        copy exposure for the next pass's first tile.
        """
        self._prev_d = self.compute_stream.record_event()

    def stage(
        self,
        upload: Callable[["DevicePtr"], int],
        compute: Callable[["DevicePtr"], object],
    ) -> "DevicePtr":
        """Prefetch one tile and queue its compute, double-buffered.

        ``upload(slot_ptr)`` enqueues the tile's host→device copies on
        :attr:`copy_stream` and returns the bytes shipped;
        ``compute(slot_ptr)`` enqueues the consuming work on
        :attr:`compute_stream`.  Returns the slot pointer this tile
        occupies.
        """
        slot_index = self._tick % self.staging.slots
        slot = self.staging.slot(self._tick)

        gate = self._consumed.get(slot_index)
        if gate is not None:
            self._wait(self.copy_stream, gate)
        ev_a = self.copy_stream.record_event()
        nbytes = upload(slot)
        ev_b = self.copy_stream.record_event()

        if self._prev_d is None:
            self._prev_d = self.compute_stream.record_event()
        prev_d = self._prev_d
        self._wait(self.compute_stream, ev_b)
        ev_c = self.compute_stream.record_event()
        compute(slot)
        ev_d = self.compute_stream.record_event()

        self._consumed[slot_index] = ev_d
        self._prev_d = ev_d
        self.stats.add_tile(
            self._tick, nbytes, ev_a, ev_b, prev_d, ev_c, ev_d
        )
        self._tick += 1
        return slot

    def synchronize(self) -> None:
        """Drain both streams; afterwards every recorded event has fired."""
        self.copy_stream.synchronize()
        self.compute_stream.synchronize()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransferPipeline(copy={self.copy_stream.name!r}, "
            f"compute={self.compute_stream.name!r}, tick={self._tick}, "
            f"staging={self.staging!r})"
        )

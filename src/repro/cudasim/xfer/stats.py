"""Per-tile transfer accounting and the copy-exposed fraction.

The pipeline records four compute/copy-stream events around every tile
(copy begin/end, compute begin/end) plus a *reference* event marking
where the compute stream stood when the tile's upload was enqueued.
After the streams drain, :meth:`XferStats.summary` turns the fired
event timestamps (simulated cycles) into:

* per-tile copy cycles (``ev_b - ev_a``) and compute cycles
  (``ev_d - ev_c``);
* per-tile **exposed** cycles — ``max(0, ev_c - prev_d)``: how long the
  compute stream actually sat waiting for the upload, i.e. the part of
  the copy the prefetch failed to hide behind the previous tile's
  compute;
* the **copy-exposed fraction** — total exposed cycles over total
  *tile-upload* cycles: the share of the pipelined traffic the
  double-buffering failed to hide.  0 means every prefetched byte hid
  under compute; 1 means the pipeline degenerated to synchronous
  copy-then-compute.  Unpipelined traffic registered via
  :meth:`add_copy` (resident-slice uploads, writebacks) is reported
  separately as ``extra_copy_cycles`` — it is serial by construction,
  so folding it into the fraction would flatter the pipeline.

Counters ``cudasim.xfer.tiles`` / ``cudasim.xfer.copy_bytes`` tick at
enqueue time; the fraction lands in the
``cudasim.xfer.copy_exposed_fraction`` gauge when summarised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ...telemetry import runtime as _telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..stream import Event

__all__ = ["TileRecord", "CopyRecord", "XferStats"]


@dataclass
class TileRecord:
    """Events bracketing one staged tile (cycles resolved post-sync)."""

    tick: int
    nbytes: int
    ev_a: "Event"  #: copy stream, before the upload
    ev_b: "Event"  #: copy stream, after the upload
    prev_d: "Event"  #: compute stream, when the upload was enqueued
    ev_c: "Event"  #: compute stream, before consuming the tile
    ev_d: "Event"  #: compute stream, after consuming the tile


@dataclass
class CopyRecord:
    """One extra (non-tile) transfer: resident uploads, writebacks."""

    label: str
    nbytes: int
    ev_a: "Event"
    ev_b: "Event"


def _cycle(event: "Event") -> float:
    cycle = event.cycle
    if cycle is None:
        raise RuntimeError(
            f"event {event!r} has not fired — synchronize the pipeline "
            "before summarising"
        )
    return cycle


class XferStats:
    """Accumulates tile/copy records; summarises after a drain."""

    def __init__(self) -> None:
        self.tiles: list[TileRecord] = []
        self.copies: list[CopyRecord] = []

    def add_tile(self, tick, nbytes, ev_a, ev_b, prev_d, ev_c, ev_d) -> None:
        self.tiles.append(
            TileRecord(tick, int(nbytes), ev_a, ev_b, prev_d, ev_c, ev_d)
        )
        _telemetry.inc("cudasim.xfer.tiles")
        _telemetry.inc("cudasim.xfer.copy_bytes", float(nbytes))

    def add_copy(self, label: str, nbytes, ev_a, ev_b) -> None:
        self.copies.append(CopyRecord(label, int(nbytes), ev_a, ev_b))
        _telemetry.inc("cudasim.xfer.copy_bytes", float(nbytes))

    @property
    def copy_bytes(self) -> int:
        return sum(t.nbytes for t in self.tiles) + sum(
            c.nbytes for c in self.copies
        )

    def reset(self) -> None:
        self.tiles.clear()
        self.copies.clear()

    def summary(self) -> dict:
        """Resolve every event and report totals + the exposed fraction.

        Raises :class:`RuntimeError` if any recorded event has not fired
        (i.e. the streams were not synchronised first).
        """
        tile_copy = tile_compute = exposed = 0.0
        for t in self.tiles:
            tile_copy += _cycle(t.ev_b) - _cycle(t.ev_a)
            tile_compute += _cycle(t.ev_d) - _cycle(t.ev_c)
            exposed += max(0.0, _cycle(t.ev_c) - _cycle(t.prev_d))
        extra_copy = sum(
            _cycle(c.ev_b) - _cycle(c.ev_a) for c in self.copies
        )
        fraction = exposed / tile_copy if tile_copy else 0.0
        _telemetry.set_gauge("cudasim.xfer.copy_exposed_fraction", fraction)
        return {
            "tiles": len(self.tiles),
            "copy_bytes": self.copy_bytes,
            "tile_copy_cycles": tile_copy,
            "extra_copy_cycles": extra_copy,
            "tile_compute_cycles": tile_compute,
            "exposed_cycles": exposed,
            "copy_exposed_fraction": fraction,
        }

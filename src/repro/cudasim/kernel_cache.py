"""Content-addressed kernel-compilation cache and :class:`CompileOptions`.

The paper's whole experimental loop is "recompile with new flags →
relaunch → time it" over a layout × unroll × block-size grid.  The
transform pipeline (LICM, unrolling, DCE, register allocation) is
deterministic, so a configuration that has been lowered once never needs
lowering again: this module keys compiled kernels by a *content hash* of
the source IR plus the full option set and the toolchain revision, the
same way ccache keys object files by preprocessed source.

Three pieces:

* :class:`CompileOptions` — a frozen dataclass replacing the historical
  ``compile_kernel(kernel, unroll=, licm=, dce=, ...)`` kwarg sprawl.
  It is also the cache key's option component, so there is exactly one
  canonical spelling of every configuration (``Unroll.FULL`` and
  ``"full"`` normalize to the same key).
* :func:`kernel_fingerprint` — a stable SHA-256 digest of a kernel's IR
  tree (names, operands, loop structure; comments excluded).  Two
  structurally identical kernels share a fingerprint even when built by
  different :class:`~repro.cudasim.ir.KernelBuilder` instances.
* :class:`KernelCache` — a bounded, thread-safe map from
  ``(fingerprint, options, toolchain)`` to the compiled
  :class:`~repro.cudasim.lower.LoweredKernel`, with an optional on-disk
  spill so repeated CLI sweeps skip compilation across processes.
  Hits and misses are counted locally and on the telemetry registry
  (``cudasim.kernel_cache.hits`` / ``.misses``).

Cached :class:`LoweredKernel` objects are shared between callers; the
compilation pipeline is the only code that mutates them, and it runs
before insertion, so sharing is safe.
"""

from __future__ import annotations

import enum
import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields, replace
from typing import Callable, Union

from ..telemetry import runtime as _telemetry
from .errors import IRError
from .ir import IfStmt, Kernel, LoopStmt, RawStmt, Seq, Stmt
from .isa import Imm, Instr, Param, Reg, SReg

__all__ = [
    "Unroll",
    "CompileOptions",
    "CacheStats",
    "KernelCache",
    "kernel_fingerprint",
    "default_cache",
    "set_default_cache",
]

#: Bump when a compiler pass changes observable output, so stale on-disk
#: cache entries from older builds can never be returned.
COMPILER_GENERATION = 1


class Unroll(enum.Enum):
    """Symbolic unroll policies (replaces the ``"full"`` string sentinel)."""

    FULL = "full"

    @classmethod
    def coerce(
        cls, value: Union[int, str, "Unroll", None]
    ) -> Union[int, str, None]:
        """Normalize an unroll spec to ``None``, a positive int or ``"full"``."""
        if value is None or value is cls.FULL:
            return "full" if value is cls.FULL else None
        if isinstance(value, str):
            if value != "full":
                raise IRError(
                    f"unknown unroll spec {value!r}; use a factor, "
                    f"Unroll.FULL or 'full'"
                )
            return "full"
        if isinstance(value, bool) or not isinstance(value, int):
            raise IRError(f"unroll must be int, 'full' or Unroll, got {value!r}")
        if value < 1:
            raise IRError(f"unroll factor must be >= 1, got {value}")
        return value


@dataclass(frozen=True)
class CompileOptions:
    """One point in the compiler-option space (and the cache key's options).

    ``unroll`` accepts an int factor, ``"full"``, :data:`Unroll.FULL` or
    ``None`` and is normalized on construction so equal configurations
    compare (and hash) equal.
    """

    unroll: Union[int, str, Unroll, None] = None
    licm: bool = False
    dce: bool = True
    max_registers: int | None = None
    validate: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "unroll", Unroll.coerce(self.unroll))

    def replace(self, **changes) -> "CompileOptions":
        return replace(self, **changes)

    def key_token(self) -> str:
        """Canonical string folded into the cache key."""
        parts = [f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)]
        return ";".join(parts)


def _operand_token(op) -> str:
    if isinstance(op, Reg):
        return f"r:{op.name}"
    if isinstance(op, Imm):
        return f"i:{op.value!r}"
    if isinstance(op, Param):
        return f"p:{op.name}"
    if isinstance(op, SReg):
        return f"s:{op.special.value}"
    raise IRError(f"cannot fingerprint operand {op!r}")


def _feed_instr(h, ins: Instr) -> None:
    h.update(ins.op.name.encode())
    for d in ins.dsts:
        h.update(_operand_token(d).encode())
    for s in ins.srcs:
        h.update(_operand_token(s).encode())
    h.update(
        f"|{ins.offset}|{ins.cmp}|{ins.target}|"
        f"{ins.pred.name if ins.pred else ''}|{ins.pred_neg}".encode()
    )


def _feed_stmt(h, stmt: Stmt) -> None:
    if isinstance(stmt, RawStmt):
        h.update(b"raw(")
        _feed_instr(h, stmt.instr)
    elif isinstance(stmt, Seq):
        h.update(b"seq(")
        for s in stmt:
            _feed_stmt(h, s)
    elif isinstance(stmt, LoopStmt):
        h.update(
            f"loop({_operand_token(stmt.var)},"
            f"{_operand_token(stmt.start)},{_operand_token(stmt.stop)},"
            f"{stmt.step},{stmt.unroll}".encode()
        )
        _feed_stmt(h, stmt.body)
    elif isinstance(stmt, IfStmt):
        h.update(f"if({_operand_token(stmt.pred)},{stmt.negate}".encode())
        _feed_stmt(h, stmt.body)
    else:  # pragma: no cover - defensive
        raise IRError(f"cannot fingerprint {stmt!r}")
    h.update(b")")


def kernel_fingerprint(kernel: Kernel) -> str:
    """Stable content hash of a kernel's IR (comments excluded)."""
    h = hashlib.sha256()
    h.update(kernel.name.encode())
    h.update(repr(kernel.params).encode())
    h.update(str(kernel.shared_words).encode())
    _feed_stmt(h, kernel.body)
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`KernelCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "hit_rate": self.hit_rate,
        }


class KernelCache:
    """Bounded LRU map from compile keys to :class:`LoweredKernel`.

    ``persist_dir`` enables the on-disk layer: every stored entry is also
    pickled to ``<persist_dir>/<key>.lk`` and missing in-memory entries
    are re-read from there (a *disk hit* still counts as a hit).  Corrupt
    or unreadable files fall back to recompilation.
    """

    def __init__(
        self, max_entries: int = 512, persist_dir: str | None = None
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.persist_dir = persist_dir
        self.stats = CacheStats()
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def key(
        self, kernel: Kernel, options: CompileOptions, toolchain=None
    ) -> str:
        """Full cache key: IR hash × options × toolchain × compiler gen."""
        h = hashlib.sha256()
        h.update(kernel_fingerprint(kernel).encode())
        h.update(options.key_token().encode())
        h.update(str(getattr(toolchain, "value", toolchain)).encode())
        h.update(str(COMPILER_GENERATION).encode())
        return h.hexdigest()

    def get_or_compile(
        self,
        kernel: Kernel,
        options: CompileOptions,
        compile_fn: Callable[[Kernel, CompileOptions], object],
        toolchain=None,
    ):
        """Return the cached lowering for this configuration, compiling on miss."""
        key = self.key(kernel, options, toolchain)
        with self._lock:
            lk = self._entries.get(key)
            if lk is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                _telemetry.inc("cudasim.kernel_cache.hits", kernel=kernel.name)
                return lk
        lk = self._load_disk(key)
        if lk is not None:
            with self._lock:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._put_locked(key, lk, spill=False)
            _telemetry.inc("cudasim.kernel_cache.hits", kernel=kernel.name)
            return lk
        lk = compile_fn(kernel, options)
        with self._lock:
            self.stats.misses += 1
            self._put_locked(key, lk, spill=True)
        _telemetry.inc("cudasim.kernel_cache.misses", kernel=kernel.name)
        return lk

    def get_or_build(self, key: str, build: Callable[[], object]):
        """Memoize an arbitrary compiled artifact under a caller-made key.

        The generic sibling of :meth:`get_or_compile` used by the
        executor fastpath for its codegen'd programs.  Entries share the
        LRU budget and hit/miss counters but never touch the disk layer:
        ``exec``-built module objects are not picklable.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
        entry = build()
        with self._lock:
            self.stats.misses += 1
            self._put_locked(key, entry, spill=False)
        return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    # -- internals ---------------------------------------------------------

    def _put_locked(self, key: str, lk, spill: bool) -> None:
        self._entries[key] = lk
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        if spill and self.persist_dir is not None:
            self._store_disk(key, lk)

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.persist_dir, f"{key}.lk")

    def _load_disk(self, key: str):
        if self.persist_dir is None:
            return None
        try:
            with open(self._disk_path(key), "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return None

    def _store_disk(self, key: str, lk) -> None:
        try:
            os.makedirs(self.persist_dir, exist_ok=True)
            tmp = self._disk_path(key) + ".tmp"
            with open(tmp, "wb") as fh:
                pickle.dump(lk, fh)
            os.replace(tmp, self._disk_path(key))
        except OSError:  # disk cache is best-effort
            pass


#: Environment variable naming a directory for the persistent layer of
#: the process-default cache.
PERSIST_ENV = "REPRO_KERNEL_CACHE_DIR"

_default: KernelCache | None = None
_default_lock = threading.Lock()


def default_cache() -> KernelCache:
    """The process-wide cache :func:`repro.cudasim.compile_kernel` uses."""
    global _default
    with _default_lock:
        if _default is None:
            _default = KernelCache(persist_dir=os.environ.get(PERSIST_ENV))
        return _default


def set_default_cache(cache: KernelCache | None) -> KernelCache | None:
    """Swap the process-default cache (``None`` → fresh on next use)."""
    global _default
    with _default_lock:
        previous, _default = _default, cache
    return previous

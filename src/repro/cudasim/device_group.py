"""Multi-GPU topology: a group of simulated devices sharing one host.

:class:`DeviceGroup` models the multi-card workstation of the late-2000s
GPGPU era (and the ``cudaSetDevice`` loop that drove it): ``M``
independent :class:`~repro.cudasim.launch.Device` instances, each with
its own global-memory heap and SM set, plus the host-visible topology
facts a multi-device driver needs:

* **Kernel-cache sharing.**  All members are handed the *same*
  content-addressed :class:`~repro.cudasim.kernel_cache.KernelCache`, so
  a kernel compiled for ``dev0`` is a cache hit on ``dev1``..``devM-1``
  — the cache key is (IR hash × options × toolchain), and group members
  share a toolchain.  This mirrors the real CUDA driver's per-PTX JIT
  cache being keyed by code, not by card.

* **Peer access.**  ``peer_access`` says whether device→device copies
  may cross the bus directly (``cudaDeviceEnablePeerAccess``) or must
  stage through host memory.  :meth:`via_host` translates the flag into
  the argument :meth:`~repro.cudasim.stream.Stream.memcpy_peer_async`
  expects: direct copies cost one modeled PCIe traversal, host-staged
  copies two.

Members are named ``dev0``, ``dev1``, … so telemetry spans (and the
Chrome trace's track assignment) distinguish which simulated card did
the work.

Example::

    group = DeviceGroup(4, toolchain=Toolchain.CUDA_1_1)
    lk = group[0].compile(kernel)          # compiles once...
    lks = [d.compile(kernel) for d in group]   # ...all cache hits
    with group[0].stream() as s:
        s.memcpy_peer_async(src, group[1], dst, nwords,
                            via_host=group.via_host)
"""

from __future__ import annotations

from typing import Iterator

from .device import DeviceProperties, G8800GTX, Toolchain
from .kernel_cache import KernelCache, default_cache
from .launch import DEFAULT_HEAP_BYTES, Device, _UNSET

__all__ = ["DeviceGroup"]


class DeviceGroup:
    """``count`` homogeneous simulated devices behind one host process.

    All constructor knobs other than ``count``, ``peer_access`` and
    ``cache`` are forwarded to every member :class:`Device`.  ``cache``
    defaults to the process-wide kernel cache; whatever cache is chosen,
    every member receives the *same* object, so compilation work is
    shared across the group by content address.  Pass ``cache=None`` to
    disable caching on all members (each compiles independently).
    """

    def __init__(
        self,
        count: int,
        props: DeviceProperties = G8800GTX,
        toolchain: Toolchain = Toolchain.CUDA_1_0,
        heap_bytes: int = DEFAULT_HEAP_BYTES,
        sm_engine: str | None = None,
        cache: KernelCache | None | object = _UNSET,
        fastpath: bool | int | None = None,
        peer_access: bool = True,
        event_timeout: float | None = None,
    ) -> None:
        if count < 1:
            raise ValueError(f"device count must be >= 1, got {count}")
        self.peer_access = bool(peer_access)
        shared_cache = default_cache() if cache is _UNSET else cache
        self.devices: tuple[Device, ...] = tuple(
            Device(
                props=props,
                toolchain=toolchain,
                heap_bytes=heap_bytes,
                sm_engine=sm_engine,
                cache=shared_cache,
                fastpath=fastpath,
                name=f"dev{i}",
                event_timeout=event_timeout,
            )
            for i in range(count)
        )
        self.cache = shared_cache

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self.devices)

    def __getitem__(self, index: int) -> Device:
        return self.devices[index]

    # -- topology ------------------------------------------------------------

    @property
    def via_host(self) -> bool:
        """The ``via_host`` argument peer copies on this group should use."""
        return not self.peer_access

    # -- group-wide operations -----------------------------------------------

    def open_streams(self, prefix: str = "q") -> list:
        """One named stream per member, for host-side job dispatch.

        Streams are named ``<prefix><i>`` after their device index so
        telemetry spans and Chrome-trace tracks line up with
        :attr:`devices`; the caller owns (and must close) them.
        """
        return [
            dev.stream(f"{prefix}{i}") for i, dev in enumerate(self.devices)
        ]

    def capture(self, streams, name: str | None = None):
        """Capture a :class:`~repro.cudasim.graph.LaunchGraph` over
        ``streams`` (one or more streams on this group's members)::

            with group.capture(streams, "step") as graph:
                ...issue one epoch's ops...
            graph.instantiate()
            graph.replay()
        """
        from .graph import LaunchGraph

        return LaunchGraph.capture(streams, name=name)

    def queue_depths(self) -> tuple[int, ...]:
        """Per-member pending-op counts across each device's streams."""
        return tuple(dev.queue_depth() for dev in self.devices)

    def queue_depth(self) -> int:
        """Total pending ops across the whole group."""
        return sum(self.queue_depths())

    def synchronize(self) -> None:
        """Drain every stream on every member device."""
        for dev in self.devices:
            dev.synchronize()

    def reset(self) -> None:
        """Reset every member's heap (frees all allocations)."""
        for dev in self.devices:
            dev.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeviceGroup({len(self.devices)} x {self.devices[0].props.name},"
            f" peer_access={self.peer_access})"
        )

"""Structured kernel IR and the :class:`KernelBuilder` DSL.

Kernels are built as a tree of statements (sequences, counted loops,
forward conditionals) over virtual registers.  The compiler passes of
:mod:`repro.cudasim.transforms` (loop unrolling, invariant code motion)
operate on this tree; :mod:`repro.cudasim.lower` flattens it to the ISA
of :mod:`repro.cudasim.isa`; :mod:`repro.cudasim.regalloc` then maps
virtual registers to a physical register file — the register counts that
drive the paper's occupancy argument.

The builder is deliberately close to how the paper's CUDA-C kernels read::

    b = KernelBuilder("gravity", params=("pos", "n"))
    i = b.tmp("i")
    b.imad(i, b.sreg("ctaid"), b.sreg("ntid"), b.sreg("tid"))
    with b.loop(0, 128) as j:
        ...
    b.build(shared_words=512)
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence, Union

from .errors import IRError
from .isa import CMP_OPS, Imm, Instr, Op, Operand, Param, Reg, Special, SReg

__all__ = [
    "Stmt",
    "RawStmt",
    "Seq",
    "LoopStmt",
    "IfStmt",
    "Kernel",
    "KernelBuilder",
    "walk_instrs",
    "count_static_instrs",
]


@dataclass
class RawStmt:
    """A single machine instruction."""

    instr: Instr


@dataclass
class Seq:
    """Ordered statement sequence."""

    stmts: list["Stmt"] = field(default_factory=list)

    def __iter__(self) -> Iterator["Stmt"]:
        return iter(self.stmts)

    def __len__(self) -> int:
        return len(self.stmts)


@dataclass
class LoopStmt:
    """Counted loop: ``for var = start; var < stop; var += step``.

    ``unroll`` is the pragma carried to the unrolling pass: ``None`` for
    no unrolling, an integer factor, or ``"full"``.
    """

    var: Reg
    start: Operand
    stop: Operand
    step: int
    body: Seq
    unroll: Union[int, str, None] = None

    def __post_init__(self) -> None:
        if self.step == 0:
            raise IRError("loop step must be nonzero")

    def static_trip_count(self) -> int | None:
        """Trip count when both bounds are immediates, else ``None``."""
        if isinstance(self.start, Imm) and isinstance(self.stop, Imm):
            span = self.stop.value - self.start.value
            trips = -(-span // self.step) if self.step > 0 else -(-(-span) // (-self.step))
            return max(0, int(trips))
        return None


@dataclass
class IfStmt:
    """Forward conditional: run ``body`` where ``pred`` (xor negate) holds.

    Lowered to a branch over the body.  The simulator executes it either
    as a uniform branch or via lane masking when the predicate diverges
    within a warp.
    """

    pred: Reg
    body: Seq
    negate: bool = False


Stmt = Union[RawStmt, Seq, LoopStmt, IfStmt]


@dataclass
class Kernel:
    """A complete kernel: parameters, shared-memory footprint, body tree."""

    name: str
    params: tuple[str, ...]
    body: Seq
    shared_words: int = 0

    def with_body(self, body: Seq, suffix: str = "") -> "Kernel":
        return replace(self, body=body, name=self.name + suffix)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Kernel {self.name!r} params={self.params} "
            f"shared={self.shared_words}w>"
        )


def walk_instrs(stmt: Stmt) -> Iterator[Instr]:
    """All instructions in tree order (loop bodies visited once)."""
    if isinstance(stmt, RawStmt):
        yield stmt.instr
    elif isinstance(stmt, Seq):
        for s in stmt:
            yield from walk_instrs(s)
    elif isinstance(stmt, LoopStmt):
        yield from walk_instrs(stmt.body)
    elif isinstance(stmt, IfStmt):
        yield from walk_instrs(stmt.body)
    else:  # pragma: no cover - defensive
        raise IRError(f"unknown statement {stmt!r}")


def count_static_instrs(stmt: Stmt) -> int:
    """Static instruction count of a tree (loop bodies counted once)."""
    return sum(1 for ins in walk_instrs(stmt) if ins.is_real)


class KernelBuilder:
    """Fluent construction of kernel IR.

    Operand coercion rules: python numbers become :class:`Imm`;
    strings become :class:`Reg`; ``Reg``/``Imm``/``Param``/``SReg`` pass
    through.  Every emitter returns its destination register so
    expressions chain naturally.
    """

    def __init__(self, name: str, params: Sequence[str] = ()) -> None:
        self.name = name
        self.params = tuple(params)
        self._root = Seq()
        self._stack: list[Seq] = [self._root]
        self._fresh = itertools.count()
        self._shared_words = 0

    # -- operand helpers ----------------------------------------------------

    @staticmethod
    def _coerce(x) -> Operand:
        if isinstance(x, (Reg, Imm, Param, SReg)):
            return x
        if isinstance(x, bool):
            raise IRError("bool is not an operand; use a predicate register")
        if isinstance(x, (int, float)):
            return Imm(x)
        if isinstance(x, str):
            return Reg(x)
        raise IRError(f"cannot use {x!r} as an operand")

    def reg(self, name: str) -> Reg:
        return Reg(name)

    def tmp(self, hint: str = "t") -> Reg:
        return Reg(f"{hint}{next(self._fresh)}")

    def pred(self, hint: str = "") -> Reg:
        return Reg(f"p${hint}{next(self._fresh)}")

    def param(self, name: str) -> Param:
        if name not in self.params:
            raise IRError(f"kernel {self.name!r} has no parameter {name!r}")
        return Param(name)

    def sreg(self, which: str) -> SReg:
        return SReg(Special(which))

    # -- shared memory --------------------------------------------------------

    def alloc_shared(self, words: int) -> int:
        """Reserve ``words`` 4-byte words of shared memory; returns the
        byte offset of the allocation within the block's shared space."""
        if words <= 0:
            raise IRError("shared allocation must be positive")
        base = self._shared_words * 4
        self._shared_words += int(words)
        return base

    # -- emission core ----------------------------------------------------------

    def emit(self, instr: Instr) -> None:
        self._stack[-1].stmts.append(RawStmt(instr))

    def _alu(self, op: Op, dst, *srcs, comment: str = "") -> Reg:
        dst = self._coerce(dst)
        if not isinstance(dst, Reg):
            raise IRError(f"destination must be a register, got {dst!r}")
        self.emit(
            Instr(
                op,
                dsts=(dst,),
                srcs=tuple(self._coerce(s) for s in srcs),
                comment=comment,
            )
        )
        return dst

    # -- float ALU ---------------------------------------------------------------

    def mov(self, dst, a, **kw) -> Reg:
        return self._alu(Op.MOV, dst, a, **kw)

    def add(self, dst, a, b, **kw) -> Reg:
        return self._alu(Op.ADD, dst, a, b, **kw)

    def sub(self, dst, a, b, **kw) -> Reg:
        return self._alu(Op.SUB, dst, a, b, **kw)

    def mul(self, dst, a, b, **kw) -> Reg:
        return self._alu(Op.MUL, dst, a, b, **kw)

    def mad(self, dst, a, b, c, **kw) -> Reg:
        """dst = a * b + c (single-issue fused multiply-add)."""
        return self._alu(Op.MAD, dst, a, b, c, **kw)

    def div(self, dst, a, b, **kw) -> Reg:
        return self._alu(Op.DIV, dst, a, b, **kw)

    def rsqrt(self, dst, a, **kw) -> Reg:
        return self._alu(Op.RSQRT, dst, a, **kw)

    def sqrt(self, dst, a, **kw) -> Reg:
        return self._alu(Op.SQRT, dst, a, **kw)

    def fmin(self, dst, a, b, **kw) -> Reg:
        return self._alu(Op.MIN, dst, a, b, **kw)

    def fmax(self, dst, a, b, **kw) -> Reg:
        return self._alu(Op.MAX, dst, a, b, **kw)

    def neg(self, dst, a, **kw) -> Reg:
        return self._alu(Op.NEG, dst, a, **kw)

    def fabs(self, dst, a, **kw) -> Reg:
        return self._alu(Op.ABS, dst, a, **kw)

    # -- integer ALU -------------------------------------------------------------

    def iadd(self, dst, a, b, **kw) -> Reg:
        return self._alu(Op.IADD, dst, a, b, **kw)

    def isub(self, dst, a, b, **kw) -> Reg:
        return self._alu(Op.ISUB, dst, a, b, **kw)

    def imul(self, dst, a, b, **kw) -> Reg:
        return self._alu(Op.IMUL, dst, a, b, **kw)

    def imad(self, dst, a, b, c, **kw) -> Reg:
        return self._alu(Op.IMAD, dst, a, b, c, **kw)

    def shl(self, dst, a, b, **kw) -> Reg:
        return self._alu(Op.SHL, dst, a, b, **kw)

    def shr(self, dst, a, b, **kw) -> Reg:
        return self._alu(Op.SHR, dst, a, b, **kw)

    def f2i(self, dst, a, **kw) -> Reg:
        return self._alu(Op.F2I, dst, a, **kw)

    def i2f(self, dst, a, **kw) -> Reg:
        return self._alu(Op.I2F, dst, a, **kw)

    # -- predicates ---------------------------------------------------------------

    def setp(self, cmp: str, dst, a, b, **kw) -> Reg:
        if cmp not in CMP_OPS:
            raise IRError(f"bad comparison {cmp!r}")
        dst = self._coerce(dst)
        self.emit(
            Instr(
                Op.SETP,
                dsts=(dst,),
                srcs=(self._coerce(a), self._coerce(b)),
                cmp=cmp,
                **kw,
            )
        )
        return dst

    def selp(self, dst, a, b, pred: Reg, **kw) -> Reg:
        dst = self._coerce(dst)
        self.emit(
            Instr(
                Op.SELP,
                dsts=(dst,),
                srcs=(self._coerce(a), self._coerce(b), pred),
                **kw,
            )
        )
        return dst

    # -- memory ------------------------------------------------------------------

    def _mem(self, op: Op, dsts, addr, offset: int, srcs=(), comment="") -> None:
        if isinstance(dsts, (Reg, str)):
            dsts = (dsts,)
        dsts = tuple(Reg(d) if isinstance(d, str) else d for d in dsts)
        self.emit(
            Instr(
                op,
                dsts=tuple(dsts),
                srcs=(self._coerce(addr), *map(self._coerce, srcs)),
                offset=int(offset),
                comment=comment,
            )
        )

    def ld_global(self, dsts, addr, offset: int = 0, **kw):
        """Load 1/2/4 words from global memory at ``addr + offset``."""
        self._mem(Op.LD_GLOBAL, dsts, addr, offset, **kw)
        return dsts

    def st_global(self, addr, srcs, offset: int = 0, **kw) -> None:
        if isinstance(srcs, (Reg, str)):
            srcs = (srcs,)
        self._mem(Op.ST_GLOBAL, (), addr, offset, srcs=tuple(srcs), **kw)

    def ld_shared(self, dsts, addr, offset: int = 0, **kw):
        self._mem(Op.LD_SHARED, dsts, addr, offset, **kw)
        return dsts

    def ld_tex(self, dsts, addr, offset: int = 0, **kw):
        """Read-only fetch through the texture cache (tex1Dfetch)."""
        self._mem(Op.LD_TEX, dsts, addr, offset, **kw)
        return dsts

    def st_shared(self, addr, srcs, offset: int = 0, **kw) -> None:
        if isinstance(srcs, (Reg, str)):
            srcs = (srcs,)
        self._mem(Op.ST_SHARED, (), addr, offset, srcs=tuple(srcs), **kw)

    # -- control -----------------------------------------------------------------

    def bar_sync(self) -> None:
        self.emit(Instr(Op.BAR_SYNC))

    def clock(self, dst) -> Reg:
        dst = self._coerce(dst)
        self.emit(Instr(Op.CLOCK, dsts=(dst,)))
        return dst

    def exit(self, pred: Reg | None = None, pred_neg: bool = False) -> None:
        self.emit(Instr(Op.EXIT, pred=pred, pred_neg=pred_neg))

    @contextmanager
    def loop(
        self,
        start,
        stop,
        step: int = 1,
        var: Reg | None = None,
        unroll: Union[int, str, None] = None,
    ):
        """Structured counted loop; yields the induction register."""
        var = var or self.tmp("j")
        body = Seq()
        self._stack.append(body)
        try:
            yield var
        finally:
            self._stack.pop()
        self._stack[-1].stmts.append(
            LoopStmt(
                var=var,
                start=self._coerce(start),
                stop=self._coerce(stop),
                step=step,
                body=body,
                unroll=unroll,
            )
        )

    @contextmanager
    def if_(self, pred: Reg, negate: bool = False):
        body = Seq()
        self._stack.append(body)
        try:
            yield
        finally:
            self._stack.pop()
        self._stack[-1].stmts.append(IfStmt(pred=pred, body=body, negate=negate))

    # -- finalization -------------------------------------------------------------

    def build(self, shared_words: int | None = None) -> Kernel:
        if len(self._stack) != 1:
            raise IRError("unbalanced loop/if contexts at build time")
        return Kernel(
            name=self.name,
            params=self.params,
            body=self._root,
            shared_words=(
                self._shared_words if shared_words is None else int(shared_words)
            ),
        )

"""CUDA occupancy calculator for the simulated device.

A faithful port of NVIDIA's occupancy spreadsheet for compute capability
1.0, which is all the paper's argument needs: with 8192 registers and 768
threads per SM, a 128-thread block at 17–18 registers/thread fits 3 blocks
(12 warps, **50 %**) while 16 registers/thread fits 4 blocks (16 warps,
**67 %**) — the Sec. IV-A numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceProperties
from .errors import LaunchError

__all__ = ["OccupancyResult", "occupancy", "occupancy_table"]


def _round_up(value: int, unit: int) -> int:
    return -(-value // unit) * unit


@dataclass(frozen=True)
class OccupancyResult:
    block_size: int
    regs_per_thread: int
    shared_per_block: int
    blocks_per_sm: int
    limiter: str  # 'registers' | 'threads' | 'blocks' | 'shared'

    @property
    def active_threads(self) -> int:
        return self.blocks_per_sm * self.block_size

    @property
    def active_warps(self) -> int:
        return self.active_threads // 32

    def occupancy(self, device: DeviceProperties) -> float:
        return self.active_warps / device.max_warps_per_sm

    def describe(self, device: DeviceProperties) -> str:
        return (
            f"block={self.block_size} regs={self.regs_per_thread} "
            f"shared={self.shared_per_block}B -> {self.blocks_per_sm} "
            f"blocks/SM, {self.active_warps} warps, "
            f"{100 * self.occupancy(device):.0f}% (limited by {self.limiter})"
        )


def occupancy(
    device: DeviceProperties,
    block_size: int,
    regs_per_thread: int,
    shared_per_block: int = 0,
) -> OccupancyResult:
    """Resident blocks per SM and the limiting resource."""
    if block_size <= 0 or block_size % device.warp_size:
        raise LaunchError(
            f"block size {block_size} must be a positive multiple of "
            f"the warp size ({device.warp_size})"
        )
    if block_size > device.max_threads_per_block:
        raise LaunchError(
            f"block size {block_size} exceeds device limit "
            f"{device.max_threads_per_block}"
        )
    if regs_per_thread > device.max_registers_per_thread:
        raise LaunchError(
            f"{regs_per_thread} registers/thread exceeds the CC 1.x "
            f"limit of {device.max_registers_per_thread}"
        )

    limits: dict[str, int] = {}
    limits["threads"] = device.max_threads_per_sm // block_size
    limits["blocks"] = device.max_blocks_per_sm
    regs_per_block = _round_up(
        max(regs_per_thread, 1) * block_size, device.register_alloc_unit
    )
    limits["registers"] = device.registers_per_sm // regs_per_block
    shared_total = _round_up(
        shared_per_block + device.shared_mem_base_usage,
        device.shared_alloc_unit,
    )
    limits["shared"] = device.shared_mem_per_sm // shared_total

    limiter = min(limits, key=lambda k: (limits[k], k))
    blocks = limits[limiter]
    if blocks <= 0:
        raise LaunchError(
            f"kernel cannot launch: zero blocks fit an SM "
            f"(limited by {limiter}: {limits})"
        )
    return OccupancyResult(
        block_size=block_size,
        regs_per_thread=regs_per_thread,
        shared_per_block=shared_per_block,
        blocks_per_sm=blocks,
        limiter=limiter,
    )


def occupancy_table(
    device: DeviceProperties,
    regs_per_thread: int,
    shared_per_block: int = 0,
    block_sizes: tuple[int, ...] = (32, 64, 96, 128, 192, 256, 384, 512),
) -> list[OccupancyResult]:
    """Occupancy across block sizes (the tuning sweep of Sec. IV-A)."""
    return [
        occupancy(device, bs, regs_per_thread, shared_per_block)
        for bs in block_sizes
    ]


def suggest_block_size(
    device: DeviceProperties,
    regs_per_thread: int,
    shared_per_thread: int = 0,
    block_sizes: tuple[int, ...] = (32, 64, 96, 128, 160, 192, 256, 320, 384, 448, 512),
    per_slice_cost: float = 25.0,
    per_iter_cost: float = 16.0,
    amortization_tolerance: float = 0.01,
) -> OccupancyResult:
    """The launch-config advisor behind "switching to a block size of 128".

    Two-step rule grounded in the paper's own model:

    1. maximize occupancy (candidates that cannot launch are skipped);
    2. among the peak-occupancy blocks, a tiled kernel pays the B-phase
       (slice fetch + barriers, ≈ ``per_slice_cost`` instructions) once
       per K interactions (Eq. 2), so bigger K amortizes it — but with
       diminishing returns.  Pick the *smallest* K whose remaining
       amortization headroom, ``per_slice_cost · (1/K − 1/K_max) /
       per_iter_cost``, is below ``amortization_tolerance`` — smaller
       blocks schedule more flexibly and keep full unrolling affordable.

    For the paper's optimized kernel (16 registers, 16 B/thread tile)
    this lands on exactly 128 — the equally-occupied 64 still wastes
    ~2 % on slice overhead, while 256/512 buy under 1 %.
    """
    candidates: list[OccupancyResult] = []
    for bs in block_sizes:
        try:
            candidates.append(
                occupancy(device, bs, regs_per_thread, shared_per_thread * bs)
            )
        except LaunchError:
            continue
    if not candidates:
        raise LaunchError(
            f"no candidate block size can launch with {regs_per_thread} "
            f"registers/thread on {device.name}"
        )
    peak = max(r.occupancy(device) for r in candidates)
    peak_set = sorted(
        (r for r in candidates if r.occupancy(device) == peak),
        key=lambda r: r.block_size,
    )
    k_max = peak_set[-1].block_size
    for r in peak_set:
        headroom = (
            per_slice_cost * (1.0 / r.block_size - 1.0 / k_max) / per_iter_cost
        )
        if headroom <= amortization_tolerance:
            return r
    return peak_set[-1]  # pragma: no cover - the k_max entry always passes

"""Admission, weighted fairness, and cache-aware placement.

:class:`JobScheduler` is a *pure state machine*: it owns no threads and
takes no locks — the service drives it under one condition variable.
That keeps every policy decision deterministic given the call sequence,
which is what lets the same logic be replayed offline
(:func:`replay_placement`) to compare placement policies bit-for-bit in
benchmarks and tests.

Three policies compose per dispatch:

* **Admission** — one service-wide bounded queue
  (:class:`~repro.service.errors.QueueFullError` with a ``retry_after_s``
  derived from the smoothed job service time) plus optional per-tenant
  pending quotas (:class:`~repro.service.errors.TenantQuotaError`).
* **Fairness** — stride scheduling across tenants: each tenant carries a
  virtual ``pass`` that advances by ``1 / weight`` per dispatched job,
  and the runnable tenant with the smallest pass goes next.  A tenant
  with weight 3 gets 3× the dispatch share of a weight-1 tenant under
  contention, and an idle tenant re-enters at the current minimum so it
  cannot hoard credit.  Within a tenant, jobs order by (priority desc,
  deadline asc, submission).
* **Placement** — ``"cache"`` routes a job to a free device that has
  already compiled its :attr:`SimulationConfig.kernel_key` (warm), least
  loaded first, falling back to the least-loaded free device;
  ``"round_robin"`` is the naive baseline that cycles device indices.
  Warm sets are recorded at dispatch (compilation happens at job start,
  so by the time any later job could land there the entry is warm in the
  device-group's shared content-addressed cache — but only *that device's
  stream* replays it without a host-side cache miss window; placement
  locality is what keeps the per-device hit rate high).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from .errors import QueueFullError, TenantQuotaError
from .jobs import JobHandle, JobState

__all__ = ["JobScheduler", "TenantState", "PLACEMENT_POLICIES",
           "replay_placement"]

PLACEMENT_POLICIES = ("cache", "round_robin")


@dataclass
class TenantState:
    """Per-tenant queue + stride-scheduling accounting."""

    name: str
    weight: float = 1.0
    max_pending: int | None = None  #: queued + inflight quota (None = ∞)
    pass_value: float = 0.0
    pending: list = field(default_factory=list)  # heap of (key, handle)
    inflight: int = 0
    admitted: int = 0
    dispatched: int = 0

    @property
    def stride(self) -> float:
        return 1.0 / self.weight

    def live_queued(self) -> int:
        return sum(1 for _, h in self.pending if not h._cancelled)


class JobScheduler:
    """Deterministic admission/fairness/placement state machine."""

    def __init__(
        self,
        num_devices: int,
        *,
        max_queue_depth: int = 64,
        max_inflight_per_device: int = 2,
        placement: str = "cache",
        default_weight: float = 1.0,
    ) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if max_inflight_per_device < 1:
            raise ValueError("max_inflight_per_device must be >= 1")
        if placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {placement!r}; "
                f"choose from {PLACEMENT_POLICIES}"
            )
        self.num_devices = num_devices
        self.max_queue_depth = max_queue_depth
        self.max_inflight_per_device = max_inflight_per_device
        self.placement = placement
        self.default_weight = default_weight
        self.tenants: dict[str, TenantState] = {}
        self.queued_total = 0
        self.inflight = [0] * num_devices
        self.warm: list[set[str]] = [set() for _ in range(num_devices)]
        self.warm_hits = 0
        self.cold_dispatches = 0
        self.dispatches = 0
        #: EWMA of observed job run time, seeding the retry-after estimate.
        self.avg_run_s = 0.05
        self._seq = itertools.count()
        self._rr = 0

    # -- tenants -------------------------------------------------------------

    def tenant(
        self,
        name: str,
        weight: float | None = None,
        max_pending: int | None = None,
    ) -> TenantState:
        """Fetch-or-register a tenant (idempotent; updates are explicit)."""
        ts = self.tenants.get(name)
        if ts is None:
            ts = self.tenants[name] = TenantState(
                name,
                weight=weight if weight is not None else self.default_weight,
                max_pending=max_pending,
            )
            # A newcomer starts at the current minimum pass so it neither
            # starves the incumbents nor owes them history.
            active = [t.pass_value for t in self.tenants.values() if t is not ts]
            ts.pass_value = min(active) if active else 0.0
        else:
            if weight is not None:
                ts.weight = weight
            if max_pending is not None:
                ts.max_pending = max_pending
        if ts.weight <= 0:
            raise ValueError(f"tenant weight must be > 0, got {ts.weight}")
        return ts

    # -- admission -----------------------------------------------------------

    def retry_after_s(self) -> float:
        """Back-off estimate: time until the bounded queue frees a slot."""
        backlog = self.queued_total + sum(self.inflight)
        return max(self.avg_run_s, backlog * self.avg_run_s / self.num_devices)

    def admit(self, handle: JobHandle) -> None:
        """Enqueue an admitted job, or raise the refusal with fields set."""
        ts = self.tenant(handle.tenant)
        if self.queued_total >= self.max_queue_depth:
            raise QueueFullError(
                f"service queue is full ({self.queued_total}/"
                f"{self.max_queue_depth} jobs queued)",
                tenant=handle.tenant,
                job_id=handle.job_id,
                queue_depth=self.queued_total,
                capacity=self.max_queue_depth,
                retry_after_s=self.retry_after_s(),
            )
        pending = ts.live_queued() + ts.inflight
        if ts.max_pending is not None and pending >= ts.max_pending:
            raise TenantQuotaError(
                f"tenant {handle.tenant!r} is at its pending-job quota "
                f"({pending}/{ts.max_pending})",
                tenant=handle.tenant,
                job_id=handle.job_id,
                queue_depth=pending,
                quota=ts.max_pending,
                retry_after_s=self.retry_after_s(),
            )
        handle._seq = next(self._seq)
        heapq.heappush(ts.pending, (handle.spec.sort_key(handle._seq), handle))
        ts.admitted += 1
        self.queued_total += 1

    def remove(self, handle: JobHandle) -> bool:
        """Lazily drop a still-queued job (cancellation); True if removed."""
        if handle.state is not JobState.QUEUED or handle._cancelled:
            return False
        handle._cancelled = True  # pruned from the heap at dispatch time
        self.queued_total -= 1
        return True

    # -- dispatch ------------------------------------------------------------

    def _prune(self, ts: TenantState) -> None:
        while ts.pending and ts.pending[0][1]._cancelled:
            heapq.heappop(ts.pending)

    def _free_devices(self) -> list[int]:
        return [
            d
            for d in range(self.num_devices)
            if self.inflight[d] < self.max_inflight_per_device
        ]

    def _place(self, kernel_key: str, free: list[int]) -> tuple[int, bool]:
        """Pick a device for ``kernel_key``; returns (index, was_warm)."""
        if self.placement == "round_robin":
            for step in range(self.num_devices):
                d = (self._rr + step) % self.num_devices
                if d in free:
                    self._rr = (d + 1) % self.num_devices
                    return d, kernel_key in self.warm[d]
            raise AssertionError("caller guarantees a free device")
        warm_free = [d for d in free if kernel_key in self.warm[d]]
        pool = warm_free or free
        d = min(pool, key=lambda i: (self.inflight[i], i))
        return d, bool(warm_free)

    def next_dispatch(self) -> tuple[JobHandle, int] | None:
        """The next (job, device) to run, or None if nothing can move.

        None means either no live queued job or no device below its
        inflight bound — the service waits for a completion either way.
        """
        free = self._free_devices()
        if not free:
            return None
        best: TenantState | None = None
        for ts in self.tenants.values():
            self._prune(ts)
            if ts.pending and (
                best is None
                or (ts.pass_value, ts.name) < (best.pass_value, best.name)
            ):
                best = ts
        if best is None:
            return None
        _, handle = heapq.heappop(best.pending)
        self.queued_total -= 1
        kernel_key = handle.spec.config.kernel_key
        d, warm = self._place(kernel_key, free)
        self.warm[d].add(kernel_key)
        self.inflight[d] += 1
        best.inflight += 1
        best.dispatched += 1
        best.pass_value += best.stride
        self.dispatches += 1
        if warm:
            self.warm_hits += 1
        else:
            self.cold_dispatches += 1
        handle.device_index = d
        handle.warm_placement = warm
        handle.state = JobState.DISPATCHED
        return handle, d

    def complete(self, handle: JobHandle, run_s: float | None = None) -> None:
        """Return a dispatched job's device slot and tenant credit."""
        d = handle.device_index
        if d is not None:
            self.inflight[d] -= 1
        ts = self.tenants.get(handle.tenant)
        if ts is not None:
            ts.inflight -= 1
        if run_s is not None and run_s > 0:
            self.avg_run_s += 0.25 * (run_s - self.avg_run_s)

    # -- introspection -------------------------------------------------------

    def queued(self) -> int:
        return self.queued_total

    def total_inflight(self) -> int:
        return sum(self.inflight)

    def idle(self) -> bool:
        return self.queued_total == 0 and self.total_inflight() == 0

    def warm_hit_rate(self) -> float:
        return self.warm_hits / self.dispatches if self.dispatches else 0.0

    def stats(self) -> dict:
        return {
            "placement": self.placement,
            "dispatches": self.dispatches,
            "warm_hits": self.warm_hits,
            "cold_dispatches": self.cold_dispatches,
            "warm_hit_rate": self.warm_hit_rate(),
            "queued": self.queued_total,
            "inflight": list(self.inflight),
            "tenants": {
                name: {
                    "weight": ts.weight,
                    "admitted": ts.admitted,
                    "dispatched": ts.dispatched,
                    "queued": ts.live_queued(),
                    "inflight": ts.inflight,
                }
                for name, ts in sorted(self.tenants.items())
            },
        }


def replay_placement(
    kernel_keys: list[str],
    num_devices: int,
    placement: str = "cache",
) -> dict:
    """Deterministic offline replay of the placement policy alone.

    Feeds ``kernel_keys`` (one per job, in dispatch order) through the
    same :meth:`JobScheduler._place` logic with cumulative dispatch
    counts as the load signal — no threads, no timing, so two runs of
    the same job list produce identical numbers.  This is the apples-to-
    apples comparison benchmarks use to show cache-aware placement
    beating round-robin on warm-set hit rate.
    """
    sched = JobScheduler(
        num_devices,
        max_queue_depth=max(1, len(kernel_keys)),
        # Replay has no completions: let every job stack on its device so
        # `inflight` degenerates to the cumulative per-device load.
        max_inflight_per_device=max(1, len(kernel_keys)),
        placement=placement,
    )
    per_device = [0] * num_devices
    hits = 0
    for key in kernel_keys:
        free = sched._free_devices()
        d, warm = sched._place(key, free)
        sched.warm[d].add(key)
        sched.inflight[d] += 1
        per_device[d] += 1
        hits += bool(warm)
    n = len(kernel_keys)
    return {
        "placement": placement,
        "dispatches": n,
        "warm_hits": hits,
        "warm_hit_rate": hits / n if n else 0.0,
        "per_device_dispatches": per_device,
        "distinct_kernels": len(set(kernel_keys)),
    }

"""Host-side service failures, machine-readable.

Every error the job service raises derives from :class:`ServiceError`
and carries structured fields (tenant, job id, queue depth, retry-after)
so API clients can react programmatically — back off for
``retry_after_s`` on :class:`QueueFullError`, shed load on
:class:`TenantQuotaError` — instead of parsing message strings.  Device-
side failures keep their existing :class:`~repro.cudasim.errors.LaunchError`
family; ``repro.service`` re-exports both so one import site covers the
whole failure surface of a submission.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "QueueFullError",
    "TenantQuotaError",
    "JobCancelledError",
    "ServiceClosedError",
]


class ServiceError(Exception):
    """Base class for host-side job-service failures.

    All fields are optional and ``None`` when not applicable; they are
    keyword-only so subclasses stay positional-message-first.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        job_id: str | None = None,
        queue_depth: int | None = None,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.job_id = job_id
        self.queue_depth = queue_depth
        self.retry_after_s = retry_after_s

    def as_dict(self) -> dict:
        """JSON-safe view for API responses and logs (``None``s dropped)."""
        out = {"error": type(self).__name__, "message": str(self)}
        for key in ("tenant", "job_id", "queue_depth", "retry_after_s"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


class QueueFullError(ServiceError):
    """Admission refused: the service's bounded queue is at capacity.

    ``queue_depth`` is the depth at refusal, ``capacity`` the bound, and
    ``retry_after_s`` the scheduler's estimate of when a slot frees up
    (queue depth × smoothed job service time ÷ device count).
    """

    def __init__(self, message: str, *, capacity: int | None = None, **kw):
        super().__init__(message, **kw)
        self.capacity = capacity

    def as_dict(self) -> dict:
        out = super().as_dict()
        if self.capacity is not None:
            out["capacity"] = self.capacity
        return out


class TenantQuotaError(ServiceError):
    """Admission refused: this tenant is over its own pending-job quota."""

    def __init__(self, message: str, *, quota: int | None = None, **kw):
        super().__init__(message, **kw)
        self.quota = quota

    def as_dict(self) -> dict:
        out = super().as_dict()
        if self.quota is not None:
            out["quota"] = self.quota
        return out


class JobCancelledError(ServiceError):
    """The job was cancelled before producing a result.

    Raised from :meth:`JobHandle.result` for jobs cancelled while queued
    or while still waiting in a device FIFO.
    """


class ServiceClosedError(ServiceError):
    """Submission refused: the service is draining or closed."""

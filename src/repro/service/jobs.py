"""Job specifications, results, and the handle clients wait on."""

from __future__ import annotations

import asyncio
import concurrent.futures
import enum
import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from ..gravit.particles import ParticleSystem
from ..gravit.simulation_api import SimulationConfig

__all__ = ["JobState", "JobSpec", "JobResult", "JobHandle"]

_job_ids = itertools.count(1)


class JobState(enum.Enum):
    QUEUED = "queued"  #: admitted, waiting in a tenant queue
    DISPATCHED = "dispatched"  #: placed on a device stream's FIFO
    RUNNING = "running"  #: executing on the device stream worker
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class JobSpec:
    """One tenant-submitted simulation job.

    ``priority`` orders jobs *within* a tenant's queue (larger first);
    ``deadline_s`` (seconds from submission) breaks priority ties
    earliest-deadline-first and feeds the latency accounting.  Cross-
    tenant ordering is the scheduler's weighted-fairness business, not
    the job's.
    """

    tenant: str
    system: ParticleSystem
    config: SimulationConfig = field(default_factory=SimulationConfig)
    steps: int = 1
    dt: float = 0.01
    scheme: str = "euler"
    priority: int = 0
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.steps < 0:
            raise ValueError("steps must be non-negative")
        if self.config.devices != 1:
            raise ValueError(
                "service jobs run on one device each; submit with "
                f"devices=1 (got {self.config.devices}) — use "
                "Simulation.create directly for sharded runs"
            )

    def sort_key(self, seq: int) -> tuple:
        """Intra-tenant heap key: priority desc, deadline asc, FIFO."""
        deadline = self.deadline_s if self.deadline_s is not None else float("inf")
        return (-self.priority, deadline, seq)


@dataclass
class JobResult:
    """What a completed job hands back to its tenant."""

    job_id: str
    tenant: str
    device: str  #: name of the device that ran the job
    cycles: float  #: modeled device cycles for the stepped run
    steps: int
    state: ParticleSystem  #: final particle state (padding dropped)
    #: Raw float32 (n, 3) force records from the last force launch —
    #: the bit-identity surface against a direct GpuSimulation run.
    #: ``None`` for pool-backed jobs (their driver has no force buffer
    #: outliving the staging epoch).
    forces: np.ndarray | None
    queue_wait_s: float
    run_s: float
    warm_placement: bool  #: kernel was already compiled on that device


class JobHandle:
    """The client's grip on a submitted job.

    Wraps a :class:`concurrent.futures.Future`; :meth:`result` blocks the
    calling thread, :meth:`wait` awaits it from asyncio.  ``cancel``
    routes through the service so queued jobs leave the scheduler and
    dispatched-but-unstarted jobs leave their device FIFO.
    """

    def __init__(self, spec: JobSpec, service) -> None:
        self.spec = spec
        self.job_id = f"job{next(_job_ids)}"
        self.state = JobState.QUEUED
        self.future: concurrent.futures.Future = concurrent.futures.Future()
        self.submitted_s = time.perf_counter()
        self.dispatched_s: float | None = None
        self.finished_s: float | None = None
        self.device: str | None = None
        self.device_index: int | None = None
        self.warm_placement: bool | None = None
        self._service = service
        self._seq: int | None = None  # scheduler submission sequence
        self._stream_future: concurrent.futures.Future | None = None
        self._cancelled = False  # set under the service lock

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    def done(self) -> bool:
        return self.future.done()

    def result(self, timeout: float | None = None) -> JobResult:
        """Block until the job finishes; re-raises its failure."""
        return self.future.result(timeout)

    async def wait(self) -> JobResult:
        """Asyncio-friendly :meth:`result`."""
        return await asyncio.wrap_future(self.future)

    def cancel(self) -> bool:
        """Best-effort cancellation; True if the job will not run."""
        return self._service.cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobHandle({self.job_id}, tenant={self.tenant!r}, "
            f"state={self.state.value})"
        )

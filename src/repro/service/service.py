"""The multi-tenant simulation service.

:class:`SimulationService` is the host-side front desk over a
:class:`~repro.cudasim.device_group.DeviceGroup`: tenants submit
:class:`~repro.service.jobs.JobSpec`-shaped simulation jobs and get back
:class:`~repro.service.jobs.JobHandle` futures; a dispatcher thread
drives the :class:`~repro.service.scheduler.JobScheduler` (admission →
weighted fairness → cache-aware placement) and lands each job on the
chosen device's dedicated service stream, where it runs exactly the same
:meth:`~repro.gravit.simulation_api.Simulation.create` path a direct
caller would use — results are bit-identical to driving the simulation
yourself, by construction.

Concurrency model: one :class:`threading.Condition` guards all scheduler
state; device streams provide per-device FIFO execution on their own
worker threads; job closures *never raise* into the stream (they return
``(status, payload)`` tuples) so a failing job cannot sticky-poison a
device stream and take down its neighbours.  Asyncio callers get
:meth:`submit_async`, :meth:`JobHandle.wait` and ``async with`` support
over the same thread-backed core, so the service works identically with
and without an event loop.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
import threading
import time

from ..cudasim.device_group import DeviceGroup
from ..cudasim.errors import StreamError
from ..gravit.particles import ParticleSystem
from ..gravit.gpu_driver import PooledSimulation
from ..gravit.simulation_api import Simulation, SimulationConfig
from ..telemetry import runtime as _telemetry
from .errors import JobCancelledError, ServiceClosedError, ServiceError
from .jobs import JobHandle, JobResult, JobSpec, JobState
from .scheduler import JobScheduler

__all__ = ["SimulationService"]


class SimulationService:
    """Admit, schedule, and run tenant simulation jobs on a device group.

    ``group`` supplies the hardware; when omitted one is built from
    ``hardware`` (a :class:`SimulationConfig` whose topology knobs —
    device properties, toolchain, heap, engine, fastpath — size the
    members) with ``devices`` cards.  Scheduling knobs:

    ``max_queue_depth``
        Service-wide bound on queued jobs; admission past it raises
        :class:`~repro.service.errors.QueueFullError` with a retry-after.
    ``max_inflight_per_device``
        Jobs dispatched-but-unfinished per device (1 running + the rest
        waiting in the device stream's FIFO).
    ``placement``
        ``"cache"`` (default) routes jobs to devices warm for their
        :attr:`~repro.gravit.simulation_api.SimulationConfig.kernel_key`;
        ``"round_robin"`` is the naive baseline.
    """

    def __init__(
        self,
        group: DeviceGroup | None = None,
        *,
        devices: int = 2,
        hardware: SimulationConfig | None = None,
        max_queue_depth: int = 64,
        max_inflight_per_device: int = 2,
        placement: str = "cache",
        default_weight: float = 1.0,
    ) -> None:
        if group is None:
            hw = hardware or SimulationConfig()
            group = hw.make_group(devices)
        self.group = group
        self.streams = group.open_streams("svc")
        self._sched = JobScheduler(
            len(group),
            max_queue_depth=max_queue_depth,
            max_inflight_per_device=max_inflight_per_device,
            placement=placement,
            default_weight=default_weight,
        )
        self._cond = threading.Condition()
        self._state = "running"  # -> "draining" -> "closed"
        self._stop = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="simulation-service", daemon=True
        )
        self._thread.start()

    # -- tenants & submission ------------------------------------------------

    def register_tenant(
        self,
        name: str,
        weight: float = 1.0,
        max_pending: int | None = None,
    ) -> None:
        """Declare a tenant's fair-share weight and pending-job quota.

        Unregistered tenants are auto-registered at first submit with the
        service's default weight and no quota.
        """
        with self._cond:
            self._sched.tenant(name, weight=weight, max_pending=max_pending)

    def submit(
        self,
        tenant: str,
        system: ParticleSystem,
        config: SimulationConfig | None = None,
        *,
        steps: int = 1,
        dt: float = 0.01,
        scheme: str = "euler",
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> JobHandle:
        """Admit one job; returns its handle or raises the refusal."""
        spec = JobSpec(
            tenant=tenant,
            system=system,
            config=config or SimulationConfig(),
            steps=steps,
            dt=dt,
            scheme=scheme,
            priority=priority,
            deadline_s=deadline_s,
        )
        return self.submit_spec(spec)

    def submit_spec(self, spec: JobSpec) -> JobHandle:
        handle = JobHandle(spec, self)
        with self._cond:
            _telemetry.inc("service.jobs.submitted", tenant=spec.tenant)
            if self._state != "running":
                _telemetry.inc(
                    "service.jobs.rejected",
                    tenant=spec.tenant,
                    reason="closed",
                )
                raise ServiceClosedError(
                    f"service is {self._state}; not accepting jobs",
                    tenant=spec.tenant,
                    job_id=handle.job_id,
                )
            try:
                self._sched.admit(handle)
            except ServiceError as exc:
                _telemetry.inc(
                    "service.jobs.rejected",
                    tenant=spec.tenant,
                    reason=type(exc).__name__,
                )
                raise
            _telemetry.inc("service.jobs.admitted", tenant=spec.tenant)
            self._set_gauges()
            self._cond.notify_all()
        return handle

    async def submit_async(self, *args, **kwargs) -> JobHandle:
        """Asyncio-friendly :meth:`submit` (admission off the event loop)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, functools.partial(self.submit, *args, **kwargs)
        )

    # -- cancellation --------------------------------------------------------

    def cancel(self, handle: JobHandle) -> bool:
        """Best-effort cancel; True iff the job will not produce a result.

        Queued jobs leave the scheduler immediately; dispatched jobs are
        cancelled if their device-stream entry has not started running.
        A running job cannot be interrupted.
        """
        fail_future = None
        with self._cond:
            if handle.future.done():
                return handle.state is JobState.CANCELLED
            if handle.state is JobState.QUEUED:
                if not self._sched.remove(handle):
                    return False
                handle.state = JobState.CANCELLED
                handle.finished_s = time.perf_counter()
                _telemetry.inc("service.jobs.cancelled", tenant=handle.tenant)
                self._set_gauges()
                fail_future = JobCancelledError(
                    f"{handle.job_id} cancelled while queued",
                    tenant=handle.tenant,
                    job_id=handle.job_id,
                )
                self._cond.notify_all()
            elif (
                handle.state is JobState.DISPATCHED
                and handle._stream_future is not None
                and handle._stream_future.cancel()
            ):
                # The stream unregisters the cancelled entry from its
                # FIFO; _on_job_done releases the scheduler slot and
                # fails the client future.
                handle._cancelled = True
            else:
                return False
        if fail_future is not None:
            handle.future.set_exception(fail_future)
        return True

    # -- lifecycle -----------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, run everything queued; True when fully idle."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            if self._state == "running":
                self._state = "draining"
            self._cond.notify_all()
            while not self._sched.idle():
                remaining = 1.0
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(min(remaining, 1.0))
        for stream in self.streams:
            stream.synchronize()
        return True

    def close(self) -> None:
        """Drain, stop the dispatcher, and close the service streams."""
        self.drain()
        with self._cond:
            self._state = "closed"
            self._stop = True
            self._cond.notify_all()
        self._thread.join(timeout=10.0)
        for stream in self.streams:
            stream.close()

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    async def __aenter__(self) -> "SimulationService":
        return self

    async def __aexit__(self, *exc) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.close)

    # -- introspection -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return self._sched.queued()

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._sched.total_inflight()

    def stats(self) -> dict:
        with self._cond:
            out = self._sched.stats()
            out["state"] = self._state
            out["stream_depths"] = [s.depth for s in self.streams]
            return out

    # -- internals -----------------------------------------------------------

    def _set_gauges(self) -> None:
        _telemetry.set_gauge("service.queue_depth", self._sched.queued())
        _telemetry.set_gauge("service.inflight", self._sched.total_inflight())

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while True:
                    if self._stop:
                        return
                    item = self._sched.next_dispatch()
                    if item is not None:
                        break
                    self._cond.wait(0.5)
                handle, d = item
                handle.dispatched_s = time.perf_counter()
                handle.device = self.group[d].name
                self._set_gauges()
            stream = self.streams[d]
            try:
                fut = stream.submit(
                    "job",
                    functools.partial(self._run_job, handle),
                    device=handle.device,
                    tenant=handle.tenant,
                    job=handle.job_id,
                    track=f"svc {handle.tenant}",
                )
            except StreamError as exc:
                self._finish(handle, "error", exc)
                continue
            with self._cond:
                handle._stream_future = fut
            fut.add_done_callback(
                functools.partial(self._on_job_done, handle)
            )

    def _run_job(self, handle: JobHandle):
        """Runs on the device stream's worker; must never raise.

        Returning ``(status, payload)`` instead of raising keeps job
        failures from sticky-poisoning the device stream (which would
        refuse every later tenant's work on that card).
        """
        if handle._cancelled:
            return ("cancelled", None)
        with self._cond:
            if handle._cancelled:
                return ("cancelled", None)
            handle.state = JobState.RUNNING
        spec = handle.spec
        device = self.group[handle.device_index]
        t0 = time.perf_counter()
        try:
            sim = Simulation.create(spec.config, spec.system.copy(), device=device)
            try:
                cycles = sim.run(spec.steps, spec.dt, scheme=spec.scheme)
                replays = getattr(sim, "graph_replays", 0)
                if replays:
                    _telemetry.inc(
                        "service.graph_replays", replays, tenant=handle.tenant
                    )
                if isinstance(sim, PooledSimulation):
                    state = sim.writeback()
                    forces = None
                    # Return the job's pool storage to the device heap so
                    # tenants' populations don't accumulate across jobs.
                    sim.remove(list(sim.handles))
                    sim.pool.compact()
                else:
                    state = sim.download()
                    forces = sim.download_forces()
            finally:
                sim.close()
        except BaseException as exc:
            return ("error", exc)
        run_s = time.perf_counter() - t0
        queue_wait = (
            handle.dispatched_s - handle.submitted_s
            if handle.dispatched_s is not None
            else 0.0
        )
        return (
            "ok",
            JobResult(
                job_id=handle.job_id,
                tenant=handle.tenant,
                device=device.name,
                cycles=cycles,
                steps=spec.steps,
                state=state,
                forces=forces,
                queue_wait_s=queue_wait,
                run_s=run_s,
                warm_placement=bool(handle.warm_placement),
            ),
        )

    def _on_job_done(
        self, handle: JobHandle, fut: concurrent.futures.Future
    ) -> None:
        if fut.cancelled():
            status, payload = "cancelled", None
        else:
            try:
                status, payload = fut.result()
            except BaseException as exc:  # stream-level failure
                status, payload = "error", exc
        self._finish(handle, status, payload)

    def _finish(self, handle: JobHandle, status: str, payload) -> None:
        """Release the scheduler slot and resolve the client future."""
        now = time.perf_counter()
        with self._cond:
            run_s = payload.run_s if status == "ok" else None
            self._sched.complete(handle, run_s=run_s)
            handle.finished_s = now
            if status == "ok":
                handle.state = JobState.DONE
            elif status == "cancelled":
                handle.state = JobState.CANCELLED
            else:
                handle.state = JobState.FAILED
            self._set_gauges()
            self._cond.notify_all()
        if status == "ok":
            _telemetry.inc("service.jobs.completed", tenant=handle.tenant)
            _telemetry.inc(
                "service.placement.warm_hits"
                if handle.warm_placement
                else "service.placement.cold"
            )
            _telemetry.observe(
                "service.job_latency_s",
                now - handle.submitted_s,
                tenant=handle.tenant,
            )
            _telemetry.observe(
                "service.queue_wait_s",
                payload.queue_wait_s,
                tenant=handle.tenant,
            )
            handle.future.set_result(payload)
        elif status == "cancelled":
            _telemetry.inc("service.jobs.cancelled", tenant=handle.tenant)
            if not handle.future.done():
                handle.future.set_exception(
                    JobCancelledError(
                        f"{handle.job_id} cancelled before running",
                        tenant=handle.tenant,
                        job_id=handle.job_id,
                    )
                )
        else:
            _telemetry.inc("service.jobs.failed", tenant=handle.tenant)
            if not handle.future.done():
                handle.future.set_exception(payload)

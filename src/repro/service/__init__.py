"""``repro.service`` — simulation-as-a-service over a device group.

The multi-tenant job layer: tenants submit simulation jobs
(:class:`JobSpec`: scenario + :class:`~repro.gravit.SimulationConfig` +
steps + priority/deadline) to a :class:`SimulationService`, whose
scheduler admits them against a bounded queue, orders tenants by
weighted fairness, places each job on the device already warm for its
kernel, and dispatches onto per-device streams.  Results are
bit-identical to calling :meth:`~repro.gravit.Simulation.create`
directly.

One import site covers the whole failure surface of a submission: the
host-side :class:`ServiceError` family (admission, quota, cancellation,
lifecycle — all machine-readable) is defined here, and the device-side
:class:`~repro.cudasim.errors.LaunchError` family a running job can
surface through :meth:`JobHandle.result` is re-exported alongside it.
"""

from ..cudasim.errors import (
    CudaSimError,
    ExecutionError,
    LaunchError,
    OutOfMemoryError,
    StreamError,
)
from ..gravit.simulation_api import Simulation, SimulationConfig
from .errors import (
    JobCancelledError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    TenantQuotaError,
)
from .jobs import JobHandle, JobResult, JobSpec, JobState
from .scheduler import (
    PLACEMENT_POLICIES,
    JobScheduler,
    TenantState,
    replay_placement,
)
from .service import SimulationService

__all__ = [
    "SimulationService",
    "Simulation",
    "SimulationConfig",
    "JobSpec",
    "JobResult",
    "JobHandle",
    "JobState",
    "JobScheduler",
    "TenantState",
    "PLACEMENT_POLICIES",
    "replay_placement",
    # host-side service errors
    "ServiceError",
    "QueueFullError",
    "TenantQuotaError",
    "JobCancelledError",
    "ServiceClosedError",
    # device-side errors a job result can re-raise
    "CudaSimError",
    "LaunchError",
    "OutOfMemoryError",
    "StreamError",
    "ExecutionError",
]

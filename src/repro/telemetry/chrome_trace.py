"""Chrome trace-event exporter (loads in ``chrome://tracing`` / Perfetto).

Two event sources are rendered into one timeline JSON:

* :func:`launch_trace_events` — the *simulated* timeline of one kernel
  launch: an ``X`` (complete) slice per SM spanning that SM's finish
  cycle (``KernelStats.sm_cycles``), a memory-pipe busy-fraction counter
  track per SM, and — when a :class:`repro.cudasim.trace.MemoryTrace` is
  supplied — instant events for every recorded global access, laid out in
  program order across the owning SM's slice.  Timestamps are simulated
  cycles converted to microseconds through the device clock, so a layout
  or unrolling regression is visible as a longer slice, not just a number.

* :func:`spans_trace_events` — the *host* timeline of the telemetry
  span records (experiment phases, launches, calibration), on its own
  process track.

The trace-event JSON schema is the one documented by the Chromium
project: a ``traceEvents`` list whose entries carry ``ph`` (phase),
``ts``/``dur`` in microseconds, ``pid``/``tid`` track ids, ``name``,
``cat`` and free-form ``args``.
"""

from __future__ import annotations

import json
import os

__all__ = [
    "launch_trace_events",
    "profile_trace_events",
    "spans_trace_events",
    "chrome_trace",
    "write_chrome_trace",
]

#: pid of the simulated-device track group in exported traces.
DEVICE_PID = 1
#: pid of the host-side telemetry span track group.
HOST_PID = 1000


def _meta(pid: int, name: str, tid: int | None = None) -> dict:
    event = {
        "ph": "M",
        "pid": pid,
        "ts": 0.0,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def launch_trace_events(
    result,
    memory_trace=None,
    *,
    pid: int = DEVICE_PID,
    base_us: float = 0.0,
    max_access_events: int = 20_000,
) -> list[dict]:
    """Render one :class:`~repro.cudasim.launch.LaunchResult` to events.

    ``memory_trace`` is an optional :class:`~repro.cudasim.trace.MemoryTrace`
    captured via ``Device.launch(..., trace=recorder)``; its access
    records carry no cycle stamps, so they are spread in program order
    across their SM's slice (the block→SM mapping is the launcher's
    round-robin ``block_id % n_sms``).  ``max_access_events`` caps the
    instant events so a million-access trace cannot explode the JSON.
    """
    dev = result.device
    sm_cycles = list(result.stats.sm_cycles)
    n_sms = max(1, len(sm_cycles))

    def us(cycles: float) -> float:
        return dev.cycles_to_seconds(cycles) * 1e6

    events: list[dict] = [
        _meta(pid, f"cudasim device ({dev.name})"
              if hasattr(dev, "name") else "cudasim device"),
    ]
    per_sm = getattr(result, "sm_stats", None) or []
    for sm, end_cycle in enumerate(sm_cycles):
        tid = sm + 1
        events.append(_meta(pid, f"SM {sm}", tid=tid))
        args = {
            "grid": result.grid,
            "block": result.block,
            "sm_finish_cycles": end_cycle,
        }
        if sm < len(per_sm):
            stats = per_sm[sm]
            args.update(
                warp_instructions=stats.warp_instructions,
                idle_cycles=stats.idle_cycles,
                memory_transactions=stats.memory.transactions,
                memory_bytes=stats.memory.bytes_moved,
                blocks=stats.blocks_executed,
                warps=stats.warps_executed,
            )
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": base_us,
                "dur": us(end_cycle),
                "name": result.kernel_name,
                "cat": "kernel",
                "args": args,
            }
        )
        # Memory-pipe occupancy as a counter track: the average busy
        # fraction over the slice, dropping to zero when the SM retires.
        if sm < len(per_sm) and end_cycle > 0:
            busy = per_sm[sm].memory.busy_fraction(end_cycle)
            counter = f"mem-pipe busy SM{sm}"
            for ts, value in ((base_us, busy), (base_us + us(end_cycle), 0.0)):
                events.append(
                    {
                        "ph": "C",
                        "pid": pid,
                        "ts": ts,
                        "name": counter,
                        "args": {"busy": round(value, 4)},
                    }
                )

    if memory_trace is not None and len(memory_trace.records):
        records = memory_trace.records[:max_access_events]
        by_sm: dict[int, list] = {}
        for rec in records:
            by_sm.setdefault(rec.block % n_sms, []).append(rec)
        for sm, recs in sorted(by_sm.items()):
            end_cycle = sm_cycles[sm] if sm < len(sm_cycles) else 0.0
            dur = us(end_cycle)
            step = dur / (len(recs) + 1) if dur else 0.0
            for k, rec in enumerate(recs):
                active = sum(rec.active)
                events.append(
                    {
                        "ph": "i",
                        "s": "t",
                        "pid": pid,
                        "tid": sm + 1,
                        "ts": base_us + step * (k + 1),
                        "name": (
                            f"{'LD' if rec.is_load else 'ST'} "
                            f"{rec.width}B pc={rec.pc}"
                        ),
                        "cat": "mem",
                        "args": {
                            "block": rec.block,
                            "warp": rec.warp,
                            "active_lanes": active,
                            "useful_bytes": rec.width * active,
                        },
                    }
                )
    return events


def profile_trace_events(
    profile,
    *,
    pid: int = DEVICE_PID,
    base_us: float = 0.0,
    max_events_per_sm: int = 4096,
) -> list[dict]:
    """Stall-phase counter tracks for one profiler ``KernelProfile``.

    Each SM gets a ``stalls SM{k}`` counter track whose series are the
    profiler's stall reasons; every retained gap event becomes a square
    pulse (reason high over the gap, everything low outside it), so the
    Perfetto counter view shows *when* an SM sat in each stall phase, not
    just the totals.  Timestamps are simulated cycles converted through
    the profile's recorded device clock (``clock_mhz`` cycles per µs).
    ``max_events_per_sm`` caps the pulses per SM; the per-reason totals
    in the track's closing event are always exact.
    """
    from ..cudasim.profiler import STALL_REASONS

    clock_mhz = float(profile.device.get("clock_mhz", 1.0)) or 1.0

    def us(cycles: float) -> float:
        return float(cycles) / clock_mhz

    zeros = {reason: 0.0 for reason in STALL_REASONS}
    events: list[dict] = []
    for sm_profile in profile.per_sm:
        counter = f"stalls SM{sm_profile.sm_index}"
        for start, cycles, reason in sm_profile.gap_events[:max_events_per_sm]:
            pulse = dict(zeros)
            pulse[reason] = 1.0
            for ts, args in (
                (base_us + us(start), pulse),
                (base_us + us(start + cycles), zeros),
            ):
                events.append(
                    {
                        "ph": "C",
                        "pid": pid,
                        "ts": ts,
                        "name": counter,
                        "args": dict(args),
                    }
                )
        # Closing event restates the exact totals (caps never drop them).
        events.append(
            {
                "ph": "C",
                "pid": pid,
                "ts": base_us + us(sm_profile.end_cycle),
                "name": counter,
                "args": {
                    reason: float(sm_profile.stall_cycles[reason])
                    for reason in STALL_REASONS
                },
            }
        )
    return events


def spans_trace_events(records, *, pid: int = HOST_PID) -> list[dict]:
    """Render telemetry :class:`~repro.telemetry.spans.SpanRecord` list.

    Spans nest naturally as stacked ``X`` slices per thread track; open
    spans are dropped (a Chrome complete event needs a duration).  Track
    assignment, most-specific attribute first: a ``track`` attribute
    names the span's track verbatim (the job service tags each tenant's
    spans ``track="svc <tenant>"`` so a multi-tenant run reads as one
    lane per tenant); otherwise spans carrying a ``stream`` and/or
    ``device`` attribute (the async stream API and named
    :class:`~repro.cudasim.launch.Device` instances set them) get a
    track per (device, stream) pair, so copy/launch overlap across
    streams — and across the members of a
    :class:`~repro.cudasim.device_group.DeviceGroup` — is visible as
    side-by-side slices; everything else lands on the shared ``host``
    track.
    """
    events: list[dict] = []
    closed = [r for r in records if r.end_s is not None]
    if not closed:
        return events
    events.append(_meta(pid, "telemetry spans"))
    events.append(_meta(pid, "host", tid=1))
    track_tids: dict[tuple[str | None, ...], int] = {}

    def named_track(key: tuple[str | None, ...], label: str) -> int:
        tid = track_tids.get(key)
        if tid is None:
            tid = track_tids[key] = 2 + len(track_tids)
            events.append(_meta(pid, label, tid=tid))
        return tid

    for rec in closed:
        track = rec.attrs.get("track")
        stream = rec.attrs.get("stream")
        device = rec.attrs.get("device")
        if track is not None:
            tid = named_track(("track", str(track)), str(track))
        elif stream is None and device is None:
            tid = 1
        else:
            label = " ".join(
                part
                for part in (
                    f"device {device}" if device is not None else None,
                    f"stream {stream}" if stream is not None else None,
                )
                if part
            )
            tid = named_track((device, stream), label)
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": rec.start_s * 1e6,
                "dur": rec.duration_s * 1e6,
                "name": rec.name,
                "cat": "span",
                "args": dict(rec.attrs),
            }
        )
    return events


def chrome_trace(events: list[dict]) -> dict:
    """Wrap events in the top-level trace object, sorted by timestamp.

    Metadata events sort first on their track; Perfetto tolerates any
    order but sorted output makes the file diffable and lets tests
    assert monotonicity.
    """
    ordered = sorted(
        events,
        key=lambda e: (e.get("ts", 0.0), 0 if e["ph"] == "M" else 1),
    )
    return {"traceEvents": ordered, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, events: list[dict]) -> str:
    """Write the trace JSON; returns ``path``."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(events), fh, default=repr)
        fh.write("\n")
    return path

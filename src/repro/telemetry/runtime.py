"""Process-global telemetry state and the hook API the simulator calls.

Everything funnels through one module-level slot: ``enable()`` installs a
:class:`Telemetry` session (metrics registry + tracer + recent-launch
ring), ``disable()`` clears it.  Every hook — ``span``, ``inc``,
``record_launch`` — starts with a single global read, so instrumented hot
paths pay one branch when telemetry is off and ``span`` returns the
shared :data:`~repro.telemetry.spans.NOOP_SPAN` without allocating.
"""

from __future__ import annotations

from collections import deque

from .chrome_trace import (
    launch_trace_events,
    profile_trace_events,
    spans_trace_events,
    write_chrome_trace,
)
from .manifest import launch_manifest
from .metrics import MetricsRegistry
from .spans import NOOP_SPAN, Tracer

__all__ = [
    "Telemetry",
    "enable",
    "disable",
    "enabled",
    "get",
    "reset",
    "span",
    "synthesize_span",
    "now_s",
    "inc",
    "set_gauge",
    "observe",
    "record_launch",
    "snapshot",
    "spans",
    "export_chrome_trace",
    "last_launch",
]

#: How many launch summaries the session retains for manifests.
LAUNCH_RING = 1024


class Telemetry:
    """One enabled telemetry session."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self.launches: deque = deque(maxlen=LAUNCH_RING)
        self.last_launch = None  # most recent LaunchResult, for export


_ACTIVE: Telemetry | None = None


def enable() -> Telemetry:
    """Install (or return the already-active) telemetry session."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = Telemetry()
    return _ACTIVE


def disable() -> None:
    global _ACTIVE
    _ACTIVE = None


def enabled() -> bool:
    return _ACTIVE is not None


def get() -> Telemetry | None:
    return _ACTIVE


def reset() -> Telemetry | None:
    """Drop collected data; stays enabled if it was enabled."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE = Telemetry()
    return _ACTIVE


# -- hooks -----------------------------------------------------------------


def span(name: str, **attrs):
    """Open a span, or the shared no-op when telemetry is disabled."""
    active = _ACTIVE
    if active is None:
        return NOOP_SPAN
    return active.tracer.span(name, attrs or None)


def now_s() -> float:
    """Seconds on the active tracer's clock (0.0 when disabled)."""
    active = _ACTIVE
    if active is None:
        return 0.0
    return active.tracer.now_s()


def synthesize_span(
    name: str,
    start_s: float,
    end_s: float,
    attrs: dict | None = None,
    parent_id: int | None = None,
):
    """Append an already-timed span (see :meth:`Tracer.synthesize`)."""
    active = _ACTIVE
    if active is None:
        return None
    return active.tracer.synthesize(name, start_s, end_s, attrs, parent_id)


def inc(name: str, value: float = 1.0, **labels) -> None:
    active = _ACTIVE
    if active is None:
        return
    active.registry.counter(name).inc(value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    active = _ACTIVE
    if active is None:
        return
    active.registry.gauge(name).set(value, **labels)


def observe(name: str, value: float, **labels) -> None:
    active = _ACTIVE
    if active is None:
        return
    active.registry.histogram(name).observe(value, **labels)


def record_launch(result) -> None:
    """Roll one LaunchResult's KernelStats into the registry."""
    active = _ACTIVE
    if active is None:
        return
    stats = result.stats
    reg = active.registry
    labels = {"kernel": result.kernel_name}
    reg.counter("cudasim.launches", "simulated kernel launches").inc(**labels)
    reg.counter(
        "cudasim.warp_instructions", "dynamic warp instructions"
    ).inc(stats.warp_instructions, **labels)
    reg.counter(
        "cudasim.thread_instructions", "warp instructions x active lanes"
    ).inc(stats.thread_instructions, **labels)
    reg.counter(
        "cudasim.memory.transactions", "global-memory transactions"
    ).inc(stats.memory.transactions, **labels)
    reg.counter(
        "cudasim.memory.bytes", "global-memory bytes moved"
    ).inc(stats.memory.bytes_moved, **labels)
    reg.counter(
        "cudasim.idle_cycles", "cycles with no issuable warp"
    ).inc(stats.idle_cycles, **labels)
    reg.counter(
        "cudasim.scoreboard_stalls", "issue attempts blocked on pending regs"
    ).inc(stats.scoreboard_stalls, **labels)
    reg.histogram(
        "cudasim.launch_cycles", "simulated cycles per launch"
    ).observe(result.cycles, **labels)
    reg.gauge(
        "cudasim.occupancy", "achieved occupancy of the last launch"
    ).set(result.occupancy.occupancy(result.device), **labels)
    profile = getattr(result, "profile", None)
    if profile is not None:
        stall_counter = reg.counter(
            "cudasim.profiler.stall_cycles",
            "profiler stall cycles by attributed reason",
        )
        for reason, cycles in profile.stall_cycles.items():
            stall_counter.inc(float(cycles), reason=reason, **labels)
        reg.counter(
            "cudasim.profiler.tx_uncoalesced",
            "profiler uncoalesced global transactions",
        ).inc(int(profile.tx_uncoalesced.sum()), **labels)
        reg.counter(
            "cudasim.profiler.bank_conflicts",
            "profiler shared-memory bank-conflict replays",
        ).inc(int(profile.bank_conflicts.sum()), **labels)
        reg.gauge(
            "cudasim.profiler.occupancy_achieved",
            "profiler achieved occupancy of the last launch",
        ).set(profile.occupancy_achieved, **labels)
    active.last_launch = result
    active.launches.append(
        {
            "kernel": result.kernel_name,
            "grid": result.grid,
            "block": result.block,
            "cycles": result.cycles,
            "time_ms": result.time_ms,
            "occupancy": result.occupancy.occupancy(result.device),
            "warp_instructions": stats.warp_instructions,
            "memory_transactions": stats.memory.transactions,
            "memory_bytes": stats.memory.bytes_moved,
        }
    )


# -- accessors & exporters -------------------------------------------------


def snapshot() -> dict:
    """JSON-safe dump of the active registry ({} when disabled)."""
    active = _ACTIVE
    return active.registry.snapshot() if active is not None else {}


def spans() -> list:
    """Finished span records of the active session ([] when disabled)."""
    active = _ACTIVE
    return active.tracer.finished() if active is not None else []


def last_launch():
    active = _ACTIVE
    return active.last_launch if active is not None else None


def export_chrome_trace(path: str, result=None, memory_trace=None) -> str:
    """Write a Chrome trace of ``result`` (default: the session's last
    recorded launch) plus every finished telemetry span."""
    events: list[dict] = []
    active = _ACTIVE
    if result is None and active is not None:
        result = active.last_launch
    if result is not None:
        events.extend(launch_trace_events(result, memory_trace))
        profile = getattr(result, "profile", None)
        if profile is not None:
            events.extend(profile_trace_events(profile))
    if active is not None:
        events.extend(spans_trace_events(active.tracer.records))
    if not events:
        raise ValueError(
            "nothing to export: no launch given and no telemetry recorded "
            "(call telemetry.enable() before launching)"
        )
    return write_chrome_trace(path, events)


def write_manifest(path: str, result=None, **kwargs) -> str:
    """Append a launch manifest (default: the last recorded launch),
    attaching the current metrics snapshot."""
    from .manifest import append_manifest

    active = _ACTIVE
    if result is None and active is not None:
        result = active.last_launch
    if result is None:
        raise ValueError("no launch to write a manifest for")
    kwargs.setdefault("metrics", snapshot() or None)
    return append_manifest(path, launch_manifest(result, **kwargs))

"""Structured run manifests appended to ``results/results.jsonl``.

A manifest is one JSON object per line describing a run: what executed
(kind + payload), in which environment (interpreter, platform, package
versions), with which metrics, and how long it took.  Manifests make runs
diffable across PRs — the benchmark suite and CI both read them back.

    manifest = launch_manifest(result, wall_s=0.12)
    append_manifest("results/results.jsonl", manifest)
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

__all__ = [
    "MANIFEST_SCHEMA",
    "environment_info",
    "build_manifest",
    "launch_manifest",
    "append_manifest",
    "read_manifests",
]

MANIFEST_SCHEMA = "repro.run-manifest/v1"


def environment_info() -> dict:
    """Versions and platform facts that make a run reproducible."""
    import numpy as np

    from .._version import __version__

    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "repro": __version__,
    }


def build_manifest(
    kind: str,
    *,
    data: dict | None = None,
    config: dict | None = None,
    metrics: dict | None = None,
    notes: list[str] | None = None,
    wall_s: float | None = None,
) -> dict:
    """Assemble a schema-stamped manifest record."""
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "created_unix": time.time(),
        "run_id": os.urandom(8).hex(),
        "environment": environment_info(),
    }
    if config is not None:
        manifest["config"] = config
    if data is not None:
        manifest["data"] = data
    if metrics is not None:
        manifest["metrics"] = metrics
    if notes:
        manifest["notes"] = list(notes)
    if wall_s is not None:
        manifest["wall_s"] = round(wall_s, 6)
    return manifest


def launch_manifest(
    result,
    *,
    wall_s: float | None = None,
    config: dict | None = None,
    metrics: dict | None = None,
) -> dict:
    """Manifest for one simulated kernel launch.

    Carries the counters the paper's argument is read off: occupancy,
    dynamic warp instructions, memory transactions/bytes, and both
    clocks — simulated kernel time and host wall time.
    """
    stats = result.stats
    data = {
        "kernel": result.kernel_name,
        "grid": result.grid,
        "block": result.block,
        "cycles": result.cycles,
        "time_ms": result.time_ms,
        "occupancy": result.occupancy.occupancy(result.device),
        "blocks_per_sm": result.occupancy.blocks_per_sm,
        "occupancy_limiter": result.occupancy.limiter,
        "registers_per_thread": result.occupancy.regs_per_thread,
        "warp_instructions": stats.warp_instructions,
        "thread_instructions": stats.thread_instructions,
        "memory_transactions": stats.memory.transactions,
        "memory_bytes": stats.memory.bytes_moved,
        "idle_cycles": stats.idle_cycles,
        "scoreboard_stalls": stats.scoreboard_stalls,
        "stats": stats.as_dict(),
    }
    return build_manifest(
        "kernel-launch",
        data=data,
        config=config,
        metrics=metrics,
        wall_s=wall_s,
    )


def append_manifest(path: str, manifest: dict) -> str:
    """Append one manifest as a JSON line; returns ``path``."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(manifest, default=repr) + "\n")
    return path


def read_manifests(path: str, kind: str | None = None) -> list[dict]:
    """Load every manifest line (optionally filtered by ``kind``).

    Pre-telemetry lines without a ``schema`` stamp are skipped only when
    filtering by kind; unfiltered reads return everything parseable.
    """
    out: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if kind is not None and record.get("kind") != kind:
                continue
            out.append(record)
    return out

"""Labelled metrics: counters, gauges and histograms in a registry.

The shapes follow the Prometheus conventions the rest of the industry
standardized on, scaled down to in-process use: a metric is a name plus a
family of label-keyed series, and the registry snapshots to plain JSON-safe
dicts so exporters (run manifests, ``results.jsonl``) never meet a live
object.

    reg = MetricsRegistry()
    reg.counter("cudasim.launches").inc(kernel="forces")
    reg.histogram("cudasim.launch_cycles").observe(2495.0, kernel="forces")
    reg.snapshot()
"""

from __future__ import annotations

import math

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Decade buckets spanning sub-microsecond spans to billions of cycles.
DEFAULT_BUCKETS = tuple(float(10**k) for k in range(-6, 10))


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class _Metric:
    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[tuple, object] = {}

    def labelsets(self) -> list[dict]:
        return [dict(key) for key in self._series]

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), **self._series_value(key)}
                for key in sorted(self._series)
            ],
        }

    def _series_value(self, key: tuple) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing sum per label set."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + value

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._series.values())

    def _series_value(self, key: tuple) -> dict:
        return {"value": self._series[key]}


class Gauge(_Metric):
    """Last-write-wins value per label set."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[_label_key(labels)] = value

    def add(self, delta: float, **labels) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + delta

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0)

    def _series_value(self, key: tuple) -> dict:
        return {"value": self._series[key]}


class Histogram(_Metric):
    """Count/sum/min/max plus cumulative bucket counts per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = {
                "count": 0,
                "sum": 0.0,
                "min": math.inf,
                "max": -math.inf,
                "bucket_counts": [0] * (len(self.buckets) + 1),
            }
            self._series[key] = series
        series["count"] += 1
        series["sum"] += value
        series["min"] = min(series["min"], value)
        series["max"] = max(series["max"], value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series["bucket_counts"][i] += 1
                break
        else:  # above every bound: the +inf overflow bucket
            series["bucket_counts"][-1] += 1

    def stats(self, **labels) -> dict | None:
        series = self._series.get(_label_key(labels))
        if series is None:
            return None
        out = dict(series)
        out["mean"] = out["sum"] / out["count"] if out["count"] else 0.0
        return out

    def _series_value(self, key: tuple) -> dict:
        series = dict(self._series[key])
        series["mean"] = series["sum"] / series["count"] if series["count"] else 0.0
        series["bucket_bounds"] = list(self.buckets)
        return series


class MetricsRegistry:
    """Get-or-create home for all metrics of one telemetry session."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get(self, cls, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def snapshot(self) -> dict:
        """JSON-safe dump of every metric and series."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

"""``repro.telemetry`` — metrics, span tracing, and timeline export.

The observability layer for the simulator and the experiment harness.
Three pieces:

* a **metrics registry** (:mod:`~repro.telemetry.metrics`): counters,
  gauges and histograms with labels, snapshotting to JSON-safe dicts;
* a **span/trace API** (:mod:`~repro.telemetry.spans`): nested wall-clock
  intervals with attributes, with a zero-overhead no-op path so
  instrumented code costs one branch while telemetry is disabled;
* **exporters**: Chrome trace-event JSON of the simulated per-SM kernel
  timeline (:mod:`~repro.telemetry.chrome_trace`, loads in Perfetto) and
  structured run manifests appended to ``results/results.jsonl``
  (:mod:`~repro.telemetry.manifest`).

Quick tour::

    from repro import telemetry

    telemetry.enable()
    ...                                   # any simulated launches
    with telemetry.span("my-sweep", layout="soaoas"):
        forces, result = backend.forces_cycle(system)
    telemetry.export_chrome_trace("results/trace.json")   # open in Perfetto
    telemetry.write_manifest("results/results.jsonl")
    telemetry.snapshot()["cudasim.warp_instructions"]
"""

from .chrome_trace import (
    chrome_trace,
    launch_trace_events,
    profile_trace_events,
    spans_trace_events,
    write_chrome_trace,
)
from .manifest import (
    MANIFEST_SCHEMA,
    append_manifest,
    build_manifest,
    environment_info,
    launch_manifest,
    read_manifests,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import (
    Telemetry,
    disable,
    enable,
    enabled,
    export_chrome_trace,
    get,
    inc,
    last_launch,
    observe,
    record_launch,
    reset,
    set_gauge,
    snapshot,
    span,
    spans,
    write_manifest,
)
from .spans import NOOP_SPAN, SpanRecord, Tracer

__all__ = [
    "Telemetry",
    "enable",
    "disable",
    "enabled",
    "get",
    "reset",
    "span",
    "spans",
    "inc",
    "set_gauge",
    "observe",
    "record_launch",
    "snapshot",
    "last_launch",
    "export_chrome_trace",
    "write_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "NOOP_SPAN",
    "chrome_trace",
    "launch_trace_events",
    "profile_trace_events",
    "spans_trace_events",
    "write_chrome_trace",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "launch_manifest",
    "append_manifest",
    "read_manifests",
    "environment_info",
]

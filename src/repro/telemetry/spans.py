"""Span tracing: named, nested, attributed wall-clock intervals.

A :class:`Tracer` hands out context-manager spans::

    with tracer.span("launch", {"kernel": "forces"}) as sp:
        ...
        sp.set(cycles=result.cycles)

Finished spans become :class:`SpanRecord` entries on ``tracer.records``
(ordered by start time) and can be rendered to a Chrome trace by
:mod:`repro.telemetry.chrome_trace`.

The module also defines the disabled-path span: :data:`NOOP_SPAN` is a
single shared instance whose enter/exit do nothing, so instrumented code
can unconditionally write ``with telemetry.span(...)`` and pay only a
global read + branch when telemetry is off.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "NoopSpan", "NOOP_SPAN", "Tracer"]


@dataclass
class SpanRecord:
    """One finished (or still-open) span."""

    name: str
    span_id: int
    parent_id: int | None
    start_s: float  # seconds since the tracer's epoch
    end_s: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return (self.end_s if self.end_s is not None else self.start_s) - self.start_s

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }


class NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "NoopSpan":
        return self


#: The one instance every disabled ``telemetry.span(...)`` call returns.
NOOP_SPAN = NoopSpan()


class _LiveSpan:
    """Context manager recording one interval on its tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_record")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict | None) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._record: SpanRecord | None = None

    def __enter__(self) -> "_LiveSpan":
        self._record = self._tracer._open(self._name, self._attrs)
        return self

    def set(self, **attrs) -> "_LiveSpan":
        if self._record is not None:
            self._record.attrs.update(attrs)
        elif self._attrs is None:
            self._attrs = dict(attrs)
        else:
            self._attrs.update(attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._record is not None, "span exited without being entered"
        if exc_type is not None:
            self._record.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self._record)
        return False


class Tracer:
    """Collects spans against a monotonic clock with a fixed epoch."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._next_id = 0
        self._lock = threading.Lock()
        # Parent attribution is per thread: a stream worker's spans must
        # not become children of whatever the main thread has open.
        self._stacks = threading.local()
        self.records: list[SpanRecord] = []

    @property
    def _stack(self) -> list[int]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def now_s(self) -> float:
        """Seconds since this tracer was created."""
        return self._clock() - self._epoch

    def span(self, name: str, attrs: dict | None = None) -> _LiveSpan:
        return _LiveSpan(self, name, attrs)

    # -- span lifecycle (called by _LiveSpan) ------------------------------

    def _open(self, name: str, attrs: dict | None) -> SpanRecord:
        stack = self._stack
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        rec = SpanRecord(
            name=name,
            span_id=span_id,
            parent_id=stack[-1] if stack else None,
            start_s=self.now_s(),
            attrs=attrs if attrs is not None else {},
        )
        stack.append(rec.span_id)
        self.records.append(rec)
        return rec

    def _close(self, rec: SpanRecord) -> None:
        rec.end_s = self.now_s()
        # Spans close LIFO in the common case; tolerate out-of-order exits.
        if rec.span_id in self._stack:
            self._stack.remove(rec.span_id)

    def synthesize(
        self,
        name: str,
        start_s: float,
        end_s: float,
        attrs: dict | None = None,
        parent_id: int | None = None,
    ) -> SpanRecord:
        """Append an already-timed span record.

        For work that was *not* measured live — graph replays re-execute
        recorded ops without per-op span setup, then reconstruct child
        spans from the recorded simulated cycles.  The caller supplies
        both endpoints (seconds since this tracer's epoch) and, if the
        span belongs under a live parent, that parent's ``span_id``; the
        per-thread parent stack is not consulted.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        rec = SpanRecord(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            start_s=start_s,
            end_s=end_s,
            attrs=attrs if attrs is not None else {},
        )
        self.records.append(rec)
        return rec

    def finished(self) -> list[SpanRecord]:
        return [r for r in self.records if r.end_s is not None]

"""The unified simulation surface: one config, one entry point.

The driver layer grew three host-side front doors — :class:`GpuSimulation`
(single device), :class:`ShardedGpuSimulation` (a :class:`DeviceGroup`)
and :class:`PooledSimulation` (dynamic populations over a block pool) —
each with its own kwarg sprawl for the same underlying knobs.  This
module collapses them behind:

* :class:`SimulationConfig` — a frozen dataclass naming *every* host-side
  choice: memory layout, compiler options, toolchain, SM engine,
  fastpath, device count, heap size, pool knobs.  Equal configurations
  compare and hash equal, and :attr:`SimulationConfig.kernel_key` is a
  stable digest of exactly the fields that determine the compiled force
  kernel's content-addressed cache entry — the handle the service
  scheduler routes on for cache-aware placement.
* :class:`Simulation.create` — the single constructor.  It inspects the
  config and builds the right driver (pooled when ``pool_records_per_
  block`` is set, sharded when ``devices > 1``, plain otherwise) so the
  CLI, the tests and the multi-tenant service all drive the exact same
  surface.  Results are bit-identical to constructing the drivers
  directly: the config only *carries* the knobs, it never changes them.

The legacy kwarg constructors (``GpuSimulation(system, layout_kind=...)``
etc.) keep working behind a once-per-process deprecation warning each —
the same shim pattern :func:`repro.cudasim.compile_kernel` used for its
pre-1.1 keyword form.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, replace
from typing import Union

from ..cudasim.device import DeviceProperties, G8800GTX, Toolchain
from ..cudasim.device_group import DeviceGroup
from ..cudasim.executor import SM_ENGINES
from ..cudasim.kernel_cache import Unroll
from ..cudasim.launch import DEFAULT_HEAP_BYTES, Device
from .gpu_driver import (
    GpuConfig,
    GpuSimulation,
    OutOfCoreSimulation,
    PooledSimulation,
    ShardedGpuSimulation,
)
from .particles import ParticleSystem

__all__ = ["SimulationConfig", "Simulation"]


@dataclass(frozen=True)
class SimulationConfig:
    """Every host-side knob of one simulation, in one frozen value.

    The kernel-shaping subspace (``layout`` … ``g``) mirrors
    :class:`~repro.gravit.gpu_driver.GpuConfig`; the execution subspace
    (``engine``, ``fastpath``) selects *how* the device simulates without
    changing any result bit; the topology subspace (``devices``,
    ``peer_access``, ``device_props``, ``heap_bytes``) sizes the
    hardware; ``pool_records_per_block`` switches on the dynamic
    block-pool backing.  ``unroll`` is normalized through
    :meth:`~repro.cudasim.kernel_cache.Unroll.coerce` so equal
    configurations hash equal.
    """

    layout: str = "soaoas"
    block_size: int = 128
    unroll: Union[int, str, Unroll, None] = None
    licm: bool = False
    toolchain: Toolchain = Toolchain.CUDA_1_0
    eps: float = 1e-2
    g: float = 1.0
    engine: str | None = None  #: SM engine (serial/thread/process); None = env
    fastpath: bool | int | None = None  #: exec mode 0|1|2; None = env default
    devices: int = 1
    peer_access: bool = True
    device_props: DeviceProperties = field(repr=False, default=G8800GTX)
    heap_bytes: int = DEFAULT_HEAP_BYTES
    #: When set, the simulation is pool-backed (dynamic population):
    #: records live in a BlockPool of this many records per block.
    pool_records_per_block: int | None = None
    #: Stream the population through device tiles instead of holding it
    #: resident — for populations larger than the device heap.
    out_of_core: bool = False
    #: Rows per streamed tile (out-of-core only); None = 4 x block_size.
    tile_rows: int | None = None
    #: Capture the steady-state step into a LaunchGraph once and replay
    #: it thereafter — same bits, near-zero host work per step.
    use_graph: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "unroll", Unroll.coerce(self.unroll))
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.engine is not None and self.engine not in SM_ENGINES:
            raise ValueError(
                f"unknown SM engine {self.engine!r}; choose from {SM_ENGINES}"
            )
        if self.pool_records_per_block is not None:
            if self.pool_records_per_block < 1:
                raise ValueError("pool_records_per_block must be >= 1")
            if self.devices != 1:
                raise ValueError(
                    "pooled simulations are single-device; got "
                    f"devices={self.devices}"
                )
            if self.use_graph:
                raise ValueError(
                    "use_graph is unsupported for pooled simulations — "
                    "gather/scatter reshapes device memory every step, so "
                    "there is no steady-state op sequence to capture"
                )
        if self.tile_rows is not None and not self.out_of_core:
            raise ValueError("tile_rows requires out_of_core=True")
        if self.out_of_core:
            if self.tile_rows is not None and self.tile_rows < 1:
                raise ValueError(
                    f"tile_rows must be >= 1, got {self.tile_rows}"
                )
            if self.devices != 1:
                raise ValueError(
                    "out-of-core simulations are single-device; got "
                    f"devices={self.devices}"
                )
            if self.pool_records_per_block is not None:
                raise ValueError(
                    "out_of_core and pool_records_per_block are exclusive"
                )

    # -- derived views -------------------------------------------------------

    @property
    def gpu_config(self) -> GpuConfig:
        """The kernel-shaping subspace as the driver's :class:`GpuConfig`."""
        return GpuConfig(
            layout_kind=self.layout,
            block_size=self.block_size,
            unroll=self.unroll,
            licm=self.licm,
            toolchain=self.toolchain,
            eps=self.eps,
            g=self.g,
        )

    @property
    def kernel_key(self) -> str:
        """Digest of the fields that pick the compiled force kernel.

        Two configs share a ``kernel_key`` iff their force kernels land
        on the same content-addressed cache entry (layout × block size ×
        compile options × toolchain).  Engine/fastpath/topology knobs are
        excluded — they never change what gets compiled.
        """
        token = (
            f"{self.layout}|{self.block_size}|{self.unroll}|{self.licm}|"
            f"{self.toolchain.value}"
        )
        return hashlib.sha256(token.encode()).hexdigest()[:16]

    @property
    def label(self) -> str:
        bits = [self.gpu_config.label]
        if self.devices > 1:
            bits.append(f"x{self.devices}dev")
        if self.pool_records_per_block is not None:
            bits.append("pooled")
        if self.out_of_core:
            bits.append("ooc")
        if self.use_graph:
            bits.append("graph")
        return "+".join(bits)

    def replace(self, **changes) -> "SimulationConfig":
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """JSON-safe dump for manifests and benchmark reports."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "device_props":
                value = value.name
            elif f.name == "toolchain":
                value = value.value
            out[f.name] = value
        return out

    # -- hardware construction ----------------------------------------------

    def make_device(self, name: str | None = None) -> Device:
        """A single simulated device matching this config's knobs."""
        return Device(
            props=self.device_props,
            toolchain=self.toolchain,
            heap_bytes=self.heap_bytes,
            sm_engine=self.engine,
            fastpath=self.fastpath,
            name=name,
        )

    def make_group(self, count: int | None = None) -> DeviceGroup:
        """A :class:`DeviceGroup` of ``count`` (default ``devices``)."""
        return DeviceGroup(
            count or self.devices,
            props=self.device_props,
            toolchain=self.toolchain,
            heap_bytes=self.heap_bytes,
            sm_engine=self.engine,
            fastpath=self.fastpath,
            peer_access=self.peer_access,
        )


class Simulation:
    """The one public constructor over every simulation driver."""

    @staticmethod
    def create(
        config: SimulationConfig | None = None,
        system: ParticleSystem | None = None,
        *,
        device: Device | None = None,
        group: DeviceGroup | None = None,
        **overrides,
    ):
        """Build the right driver for ``config`` (the unified entry point).

        Dispatch: ``pool_records_per_block`` set → a
        :class:`PooledSimulation` over a fresh block pool on ``device``;
        ``devices > 1`` → a :class:`ShardedGpuSimulation` over ``group``
        (built from the config when not given); otherwise a single-device
        :class:`GpuSimulation`.  ``device``/``group`` let callers (the
        job service) pin the simulation onto existing hardware; the
        config's topology knobs are only used when they are absent.

        ``overrides`` are :class:`SimulationConfig` fields for the
        config-less convenience form ``Simulation.create(system=sys,
        layout="soa")``; passing both a config and overrides is an error.
        """
        if config is not None and overrides:
            raise ValueError(
                "pass either a SimulationConfig or keyword overrides"
            )
        cfg = config or SimulationConfig(**overrides)
        if system is None:
            raise ValueError("Simulation.create needs a ParticleSystem")
        if cfg.pool_records_per_block is not None:
            from ..cudasim.alloc import BlockPool

            dev = device or cfg.make_device()
            pool = BlockPool(
                dev,
                layout_kind=cfg.layout,
                records_per_block=cfg.pool_records_per_block,
            )
            handles = system.spawn_into(pool)
            return PooledSimulation(
                pool, dev, cfg.gpu_config, handles=handles
            )
        if group is not None or cfg.devices > 1:
            return ShardedGpuSimulation(
                system,
                cfg.gpu_config,
                group=group or cfg.make_group(),
                use_graph=cfg.use_graph,
            )
        if cfg.out_of_core:
            return OutOfCoreSimulation(
                system,
                cfg.gpu_config,
                device=device or cfg.make_device(),
                tile_rows=cfg.tile_rows,
                use_graph=cfg.use_graph,
            )
        return GpuSimulation(
            system,
            cfg.gpu_config,
            device=device or cfg.make_device(),
            use_graph=cfg.use_graph,
        )

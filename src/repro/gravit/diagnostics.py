"""Physical diagnostics for particle systems.

Standard n-body analysis quantities used by the examples and the test
suite's physics checks: virial ratio, Lagrangian radii, radial density
profiles, and velocity dispersion.  All computations are O(n) or
O(n log n) except the potential (delegated to
:meth:`repro.gravit.particles.ParticleSystem.potential_energy`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .particles import ParticleSystem

__all__ = [
    "virial_ratio",
    "lagrangian_radii",
    "radial_density_profile",
    "velocity_dispersion",
    "SystemReport",
    "system_report",
]


def _radii(system: ParticleSystem, center: np.ndarray | None = None) -> np.ndarray:
    pos = system.positions.astype(np.float64)
    if center is None:
        center = system.center_of_mass()
    return np.linalg.norm(pos - center, axis=1)


def virial_ratio(
    system: ParticleSystem, g: float = 1.0, eps: float = 1e-2
) -> float:
    """−2K/U: 1.0 for a system in virial equilibrium."""
    u = system.potential_energy(g=g, eps=eps)
    if u == 0:
        raise ValueError("potential energy is zero; ratio undefined")
    return -2.0 * system.kinetic_energy() / u


def lagrangian_radii(
    system: ParticleSystem,
    fractions: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9),
) -> dict[float, float]:
    """Radii enclosing the given mass fractions (about the COM)."""
    if not fractions or any(not 0 < f <= 1 for f in fractions):
        raise ValueError("fractions must lie in (0, 1]")
    r = _radii(system)
    order = np.argsort(r)
    m = system.mass.astype(np.float64)[order]
    cum = np.cumsum(m)
    total = cum[-1]
    if total <= 0:
        raise ValueError("system has no mass")
    out = {}
    for f in fractions:
        idx = int(np.searchsorted(cum, f * total))
        idx = min(idx, len(r) - 1)
        out[f] = float(r[order][idx])
    return out


def radial_density_profile(
    system: ParticleSystem, bins: int = 24, r_max: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """(bin centers, mass density) in spherical shells about the COM."""
    if bins < 1:
        raise ValueError("need at least one bin")
    r = _radii(system)
    r_max = r_max or float(r.max()) * 1.0001 + 1e-12
    edges = np.linspace(0.0, r_max, bins + 1)
    mass, _ = np.histogram(r, bins=edges, weights=system.mass.astype(np.float64))
    volume = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    centers = 0.5 * (edges[1:] + edges[:-1])
    return centers, mass / volume


def velocity_dispersion(system: ParticleSystem) -> float:
    """Mass-weighted 3-D velocity dispersion about the mean flow."""
    m = system.mass.astype(np.float64)
    total = m.sum()
    if total <= 0:
        raise ValueError("system has no mass")
    vel = system.velocities.astype(np.float64)
    mean = (vel * m[:, None]).sum(axis=0) / total
    dv = vel - mean
    return float(np.sqrt((m * (dv * dv).sum(axis=1)).sum() / total))


@dataclass(frozen=True)
class SystemReport:
    n: int
    total_mass: float
    kinetic: float
    potential: float
    virial: float
    half_mass_radius: float
    dispersion: float

    def describe(self) -> str:
        return (
            f"n={self.n}  M={self.total_mass:.3g}  K={self.kinetic:.3g}  "
            f"U={self.potential:.3g}  -2K/U={self.virial:.2f}  "
            f"r_half={self.half_mass_radius:.3g}  "
            f"sigma={self.dispersion:.3g}"
        )


def system_report(
    system: ParticleSystem, g: float = 1.0, eps: float = 1e-2
) -> SystemReport:
    """One-stop summary (O(n²) in the potential term — keep n moderate)."""
    return SystemReport(
        n=system.n,
        total_mass=system.total_mass(),
        kinetic=system.kinetic_energy(),
        potential=system.potential_energy(g=g, eps=eps),
        virial=virial_ratio(system, g=g, eps=eps),
        half_mass_radius=lagrangian_radii(system, (0.5,))[0.5],
        dispersion=velocity_dispersion(system),
    )

"""The Gravit simulator facade.

Bundles a particle system, a force backend and an integrator behind the
interface the examples use::

    sim = GravitSimulator(spawn.two_galaxies(512, seed=1), backend="barneshut")
    sim.run(steps=100)
    print(sim.energy_drift())

Backends:

``direct``      vectorized O(n²) float64 (the accuracy reference)
``naive``       the paper's Fig. 1 pure-Python loop (tiny n only)
``barneshut``   O(n log n) tree code, Gravit's CPU algorithm
``gpu``         the simulated-GPU kernel (functional mode by default;
                pass ``gpu_mode="cycle"`` for full cycle simulation)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal

import numpy as np

from ..telemetry import runtime as _telemetry
from .barneshut import barnes_hut_forces
from .forces_cpu import direct_forces, naive_forces
from .gpu_driver import ExecutionMode, GpuConfig, GpuForceBackend
from .integrator import euler_step, integrate, leapfrog_step
from .particles import ParticleSystem

__all__ = ["GravitSimulator", "EnergyLog"]

Backend = Literal["direct", "naive", "barneshut", "gpu"]


@dataclass
class EnergyLog:
    """Per-step conserved-quantity samples."""

    step: list[int] = field(default_factory=list)
    kinetic: list[float] = field(default_factory=list)
    potential: list[float] = field(default_factory=list)

    @property
    def total(self) -> list[float]:
        return [k + p for k, p in zip(self.kinetic, self.potential)]


class GravitSimulator:
    """A closed Newtonian system advanced by a selectable force backend."""

    def __init__(
        self,
        system: ParticleSystem,
        backend: Backend = "direct",
        g: float = 1.0,
        eps: float = 1e-2,
        dt: float = 1e-3,
        theta: float = 0.5,
        scheme: Literal["leapfrog", "euler"] = "leapfrog",
        gpu_config: GpuConfig | None = None,
        gpu_mode: ExecutionMode | str = ExecutionMode.FUNCTIONAL,
        track_energy: bool = False,
        external_field=None,
        nn_radius: float | None = None,
        nn_strength: float = 1.0,
    ) -> None:
        """``external_field``/``nn_radius`` add the FE and FNN terms of
        the paper's Eq. 1 on top of the selected far-field backend."""
        self.system = system
        self.g = g
        self.eps = eps
        self.dt = dt
        self.theta = theta
        self.steps_done = 0
        self.energy_log = EnergyLog() if track_energy else None
        self._scheme = leapfrog_step if scheme == "leapfrog" else euler_step
        self._gpu: GpuForceBackend | None = None
        if backend == "gpu":
            cfg = gpu_config or GpuConfig(eps=eps, g=g)
            if cfg.eps != eps or cfg.g != g:
                raise ValueError("gpu_config eps/g must match the simulator's")
            self._gpu = GpuForceBackend(cfg)
        self.backend = backend
        self.gpu_mode = ExecutionMode.coerce(gpu_mode)
        if self.gpu_mode is ExecutionMode.HYBRID:
            raise ValueError(
                "hybrid mode predicts wall time, not forces; use "
                "GpuForceBackend.predict_seconds directly"
            )
        self.external_field = external_field
        self.nn_radius = nn_radius
        self.nn_strength = nn_strength
        self._forces = self._make_forces_fn()
        if track_energy:
            self._log_energy()

    def _far_field_fn(self) -> Callable[[ParticleSystem], np.ndarray]:
        if self.backend == "direct":
            return lambda s: direct_forces(s, g=self.g, eps=self.eps)
        if self.backend == "naive":
            return lambda s: naive_forces(s, g=self.g, eps=self.eps)
        if self.backend == "barneshut":
            return lambda s: barnes_hut_forces(
                s, g=self.g, eps=self.eps, theta=self.theta
            )
        if self.backend == "gpu":
            assert self._gpu is not None
            if self.gpu_mode is ExecutionMode.CYCLE:
                return lambda s: self._gpu.forces_cycle(s)[0]
            return self._gpu.forces
        raise ValueError(f"unknown backend {self.backend!r}")

    def _make_forces_fn(self) -> Callable[[ParticleSystem], np.ndarray]:
        fff = self._far_field_fn()
        if self.external_field is None and self.nn_radius is None:
            return fff
        from .forces_ext import total_forces

        return lambda s: total_forces(
            s,
            g=self.g,
            eps=self.eps,
            field=self.external_field,
            nn_radius=self.nn_radius,
            nn_strength=self.nn_strength,
            far_field=fff,
        )

    # -- running ------------------------------------------------------------

    def step(self) -> None:
        with _telemetry.span(
            "gravit.step", backend=self.backend, n=self.system.n
        ):
            self._scheme(self.system, self._forces, self.dt)
        self.steps_done += 1
        _telemetry.inc("gravit.steps", backend=self.backend)
        if self.energy_log is not None:
            self._log_energy()

    def run(self, steps: int) -> "GravitSimulator":
        with _telemetry.span(
            "gravit.run", backend=self.backend, n=self.system.n, steps=steps
        ):
            integrate(
                self.system,
                self._forces,
                self.dt,
                steps,
                scheme=self._scheme,
                callback=(
                    (lambda k, s: self._log_energy())
                    if self.energy_log is not None
                    else None
                ),
            )
        self.steps_done += steps
        _telemetry.inc("gravit.steps", steps, backend=self.backend)
        return self

    # -- diagnostics -----------------------------------------------------------

    def _log_energy(self) -> None:
        assert self.energy_log is not None
        self.energy_log.step.append(self.steps_done)
        self.energy_log.kinetic.append(self.system.kinetic_energy())
        self.energy_log.potential.append(
            self.system.potential_energy(g=self.g, eps=self.eps)
        )

    def energy_drift(self) -> float:
        """|E(t) − E(0)| / |E(0)| over the logged run."""
        if self.energy_log is None or len(self.energy_log.step) < 2:
            raise ValueError("enable track_energy and run some steps first")
        total = self.energy_log.total
        e0 = total[0]
        if e0 == 0:
            return abs(total[-1])
        return abs(total[-1] - e0) / abs(e0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<GravitSimulator n={self.system.n} backend={self.backend} "
            f"steps={self.steps_done}>"
        )

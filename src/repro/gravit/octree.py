"""Octree construction for the Barnes-Hut algorithm (paper Sec. I-C).

The paper describes Gravit's tree code in three steps:

1. build an octree over the particles,
2. compute each cell's total mass and center of mass,
3. traverse the tree per particle to approximate the far-field force.

This module implements steps 1–2 with a flat, array-backed node pool
(children as integer indices) so both the recursive and the iterative
traversals of :mod:`repro.gravit.barneshut` can walk it cheaply — the
iterative form being exactly the "transform recursion into an iterative
equivalent" the paper says a GPU port of Barnes-Hut would require.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .particles import ParticleSystem

__all__ = ["Octree", "OctreeNode", "build_octree"]

#: A node subdivides only when holding more than this many particles.
LEAF_CAPACITY = 8

#: Safety valve against pathological coincident-point recursion.
MAX_DEPTH = 48


@dataclass
class OctreeNode:
    """View of one node (materialized on demand from the pools)."""

    index: int
    center: np.ndarray  # geometric center of the cube
    half: float  # half side length
    mass: float
    com: np.ndarray  # center of mass
    first_child: int  # -1 for leaves
    count: int  # particles under this node
    particle_start: int  # leaves: slice into Octree.order
    depth: int


class Octree:
    """Array-backed octree with per-node mass and center of mass.

    Attributes (all numpy arrays indexed by node id):

    ``center`` (m, 3), ``half`` (m,), ``mass`` (m,), ``com`` (m, 3),
    ``first_child`` (m,) — index of the first of 8 contiguous children or
    −1, ``count`` (m,), ``pstart``/``pcount`` — leaf particle slices into
    ``order`` (a permutation of particle indices).
    """

    def __init__(self, system: ParticleSystem):
        self.system = system
        n = system.n
        self.order = np.arange(n, dtype=np.int64)
        cap = 16
        self.center = np.zeros((cap, 3))
        self.half = np.zeros(cap)
        self.mass = np.zeros(cap)
        self.com = np.zeros((cap, 3))
        self.first_child = np.full(cap, -1, dtype=np.int64)
        self.count = np.zeros(cap, dtype=np.int64)
        self.pstart = np.zeros(cap, dtype=np.int64)
        self.pcount = np.zeros(cap, dtype=np.int64)
        self.depth_of = np.zeros(cap, dtype=np.int64)
        self.n_nodes = 0

    # -- pool plumbing -----------------------------------------------------

    def _grow(self, need: int) -> None:
        cap = self.center.shape[0]
        if need <= cap:
            return
        new = max(need, 2 * cap)
        for name in ("center", "com"):
            arr = getattr(self, name)
            grown = np.zeros((new, 3))
            grown[: self.n_nodes] = arr[: self.n_nodes]
            setattr(self, name, grown)
        for name, fill in (
            ("half", 0.0),
            ("mass", 0.0),
        ):
            arr = getattr(self, name)
            grown = np.full(new, fill)
            grown[: self.n_nodes] = arr[: self.n_nodes]
            setattr(self, name, grown)
        for name, fill in (
            ("first_child", -1),
            ("count", 0),
            ("pstart", 0),
            ("pcount", 0),
            ("depth_of", 0),
        ):
            arr = getattr(self, name)
            grown = np.full(new, fill, dtype=np.int64)
            grown[: self.n_nodes] = arr[: self.n_nodes]
            setattr(self, name, grown)

    def _new_node(
        self, center: np.ndarray, half: float, depth: int
    ) -> int:
        self._grow(self.n_nodes + 1)
        i = self.n_nodes
        self.n_nodes += 1
        self.center[i] = center
        self.half[i] = half
        self.first_child[i] = -1
        self.depth_of[i] = depth
        return i

    # -- views ----------------------------------------------------------------

    def node(self, index: int) -> OctreeNode:
        return OctreeNode(
            index=index,
            center=self.center[index].copy(),
            half=float(self.half[index]),
            mass=float(self.mass[index]),
            com=self.com[index].copy(),
            first_child=int(self.first_child[index]),
            count=int(self.count[index]),
            particle_start=int(self.pstart[index]),
            depth=int(self.depth_of[index]),
        )

    @property
    def root(self) -> OctreeNode:
        return self.node(0)

    def is_leaf(self, index: int) -> bool:
        return self.first_child[index] < 0

    def leaf_particles(self, index: int) -> np.ndarray:
        """Particle indices stored under a leaf node."""
        s, c = int(self.pstart[index]), int(self.pcount[index])
        return self.order[s : s + c]

    def max_depth(self) -> int:
        return int(self.depth_of[: self.n_nodes].max(initial=0))

    def compute_ropes(self) -> np.ndarray:
        """Skip pointers for stackless ("rope") traversal.

        ``skip[v]`` is the next node in depth-first order when ``v``'s
        subtree is *not* descended: child ``o``'s rope points at sibling
        ``o+1``, the last child inherits its parent's rope, and the
        root's rope is −1 (traversal done).  With ropes, the recursive
        Barnes-Hut walk becomes the loop the paper's Sec. I-D calls for::

            node = root
            while node != -1:
                node = skip[node] if accepted(node) else first_child[node]

        which is exactly the control structure a CUDA kernel can run.
        """
        skip = np.full(self.n_nodes, -1, dtype=np.int64)
        stack = [(0, -1)]
        while stack:
            node, rope = stack.pop()
            skip[node] = rope
            first = int(self.first_child[node])
            if first >= 0:
                for o in range(8):
                    child = first + o
                    child_rope = first + o + 1 if o < 7 else rope
                    stack.append((child, child_rope))
        return skip

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Octree nodes={self.n_nodes} particles={self.system.n}>"


def build_octree(
    system: ParticleSystem, leaf_capacity: int = LEAF_CAPACITY
) -> Octree:
    """Build the tree and fill per-node total mass / center of mass."""
    tree = Octree(system)
    pos = system.positions.astype(np.float64)
    m = system.mass.astype(np.float64)

    lo = pos.min(axis=0)
    hi = pos.max(axis=0)
    center = (lo + hi) / 2.0
    half = float(np.max(hi - lo) / 2.0) * 1.0001 + 1e-9

    root = tree._new_node(center, half, 0)

    def build(node: int, start: int, stop: int, depth: int) -> None:
        count = stop - start
        tree.count[node] = count
        idx = tree.order[start:stop]
        total = m[idx].sum()
        tree.mass[node] = total
        if total > 0:
            tree.com[node] = (pos[idx] * m[idx, None]).sum(axis=0) / total
        else:
            tree.com[node] = pos[idx].mean(axis=0) if count else tree.center[node]
        if count <= leaf_capacity or depth >= MAX_DEPTH:
            tree.pstart[node] = start
            tree.pcount[node] = count
            return
        c = tree.center[node]
        octant = (
            (pos[idx, 0] > c[0]).astype(np.int64)
            | ((pos[idx, 1] > c[1]).astype(np.int64) << 1)
            | ((pos[idx, 2] > c[2]).astype(np.int64) << 2)
        )
        sort = np.argsort(octant, kind="stable")
        tree.order[start:stop] = idx[sort]
        octant = octant[sort]
        bounds = np.searchsorted(octant, np.arange(9))
        first = tree.n_nodes
        tree._grow(first + 8)
        quarter = tree.half[node] / 2.0
        for o in range(8):
            offset = np.array(
                [
                    quarter if o & 1 else -quarter,
                    quarter if o & 2 else -quarter,
                    quarter if o & 4 else -quarter,
                ]
            )
            child = tree._new_node(c + offset, quarter, depth + 1)
            assert child == first + o
        tree.first_child[node] = first
        for o in range(8):
            build(
                first + o,
                start + int(bounds[o]),
                start + int(bounds[o + 1]),
                depth + 1,
            )

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10 * MAX_DEPTH + 1000))
    try:
        build(root, 0, system.n, 0)
    finally:
        sys.setrecursionlimit(old_limit)
    return tree

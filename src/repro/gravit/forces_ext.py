"""The other two terms of the paper's Eq. 1, and a multi-core direct sum.

Sec. I-C: *"the absolute force on a particle is the sum of the external
force, nearest neighbor force and the far field force —
Force = FE + FNN + FFF."*  The paper (and this reproduction's GPU side)
concentrates on the far-field term; this module supplies the remaining
two so :func:`total_forces` composes the full equation:

* :func:`external_forces` — a configurable global field
  (:class:`ExternalField`: uniform gravity, central attractor, drag);
* :func:`nearest_neighbor_forces` — short-range softened repulsion over
  a k-d tree neighbor query (``scipy.spatial.cKDTree``), O(n log n),
  the standard way a CPU code evaluates contact-scale terms;
* :func:`direct_forces_parallel` — the O(n²) far-field sum fanned out
  over processes (the "thoroughly parallelized for standard multi-core
  systems" baseline the paper mentions for CPU tree codes applies to
  direct sums too).

All return forces, shape (n, 3) float64, like
:mod:`repro.gravit.forces_cpu`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from .forces_cpu import direct_forces
from .particles import ParticleSystem

__all__ = [
    "ExternalField",
    "external_forces",
    "nearest_neighbor_forces",
    "total_forces",
    "direct_forces_parallel",
]


@dataclass(frozen=True)
class ExternalField:
    """A global field contributing the paper's ``FE`` term.

    ``uniform`` is a constant acceleration (e.g. a galactic tide proxy);
    ``central_mass`` adds a softened point attractor at ``center``;
    ``drag`` a velocity-proportional damping (Gravit exposes one).
    """

    uniform: tuple[float, float, float] = (0.0, 0.0, 0.0)
    central_mass: float = 0.0
    center: tuple[float, float, float] = (0.0, 0.0, 0.0)
    eps: float = 1e-2
    drag: float = 0.0

    def __post_init__(self) -> None:
        if self.central_mass < 0 or self.drag < 0:
            raise ValueError("central mass and drag must be non-negative")


def external_forces(
    system: ParticleSystem, field: ExternalField, g: float = 1.0
) -> np.ndarray:
    """``FE``: per-particle force from the global field."""
    m = system.mass.astype(np.float64)[:, None]
    out = m * np.asarray(field.uniform, dtype=np.float64)[None, :]
    if field.central_mass > 0:
        d = np.asarray(field.center, dtype=np.float64)[None, :] - (
            system.positions.astype(np.float64)
        )
        r2 = (d * d).sum(axis=1, keepdims=True) + field.eps**2
        out = out + g * field.central_mass * m * d * r2**-1.5
    if field.drag > 0:
        out = out - field.drag * m * system.velocities.astype(np.float64)
    return out


def nearest_neighbor_forces(
    system: ParticleSystem,
    radius: float,
    strength: float = 1.0,
    core: float | None = None,
) -> np.ndarray:
    """``FNN``: pairwise short-range repulsion within ``radius``.

    A softened contact force ``f(r) = strength · m_i m_j (1/r − 1/radius)
    · r̂`` for ``r < radius`` (continuous at the cutoff), evaluated over
    k-d-tree neighbor pairs — exactly antisymmetric, so momentum is
    conserved to rounding.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    core = radius / 100.0 if core is None else core
    pos = system.positions.astype(np.float64)
    m = system.mass.astype(np.float64)
    tree = cKDTree(pos)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    out = np.zeros((system.n, 3))
    if pairs.size == 0:
        return out
    i, j = pairs[:, 0], pairs[:, 1]
    d = pos[j] - pos[i]
    r = np.maximum(np.linalg.norm(d, axis=1), core)
    mag = strength * m[i] * m[j] * (1.0 / r - 1.0 / radius)
    f = d * (mag / r)[:, None]
    # Repulsion: i is pushed away from j (−f on i, +f on j).
    np.add.at(out, i, -f)
    np.add.at(out, j, f)
    return out


def total_forces(
    system: ParticleSystem,
    g: float = 1.0,
    eps: float = 1e-2,
    field: ExternalField | None = None,
    nn_radius: float | None = None,
    nn_strength: float = 1.0,
    far_field=None,
) -> np.ndarray:
    """The paper's Eq. 1: ``Force = FE + FNN + FFF``.

    ``far_field`` defaults to the vectorized direct sum; pass
    e.g. ``barnes_hut_forces`` or a GPU backend's ``forces`` for the FFF
    term the paper actually studies.
    """
    fff = (far_field or (lambda s: direct_forces(s, g=g, eps=eps)))(system)
    total = np.asarray(fff, dtype=np.float64)
    if field is not None:
        total = total + external_forces(system, field, g=g)
    if nn_radius is not None:
        total = total + nearest_neighbor_forces(
            system, nn_radius, strength=nn_strength
        )
    return total


# ---------------------------------------------------------------- parallel

def _chunk_forces(args) -> tuple[int, np.ndarray]:
    """Worker: far-field forces on targets [start, stop) (module-level so
    it pickles for the process pool)."""
    start, stop, pos, m, g, eps = args
    d = pos[None, :, :] - pos[start:stop, None, :]
    r2 = (d * d).sum(axis=2) + eps * eps
    with np.errstate(divide="ignore"):
        inv3 = r2**-1.5
    inv3[~np.isfinite(inv3)] = 0.0
    w = m[None, :] * inv3
    forces = (d * w[:, :, None]).sum(axis=1)
    forces *= g * m[start:stop, None]
    return start, forces


def direct_forces_parallel(
    system: ParticleSystem,
    g: float = 1.0,
    eps: float = 1e-2,
    workers: int = 2,
    chunk: int = 512,
) -> np.ndarray:
    """O(n²) far-field forces across a process pool.

    Targets are split into chunks; each worker owns disjoint output rows,
    so assembly is a plain scatter.  Matches :func:`direct_forces` to
    float64 rounding (asserted in the tests).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    pos = system.positions.astype(np.float64)
    m = system.mass.astype(np.float64)
    jobs = [
        (start, min(start + chunk, system.n), pos, m, g, eps)
        for start in range(0, system.n, chunk)
    ]
    out = np.zeros((system.n, 3))
    if workers == 1 or len(jobs) == 1:
        for job in jobs:
            start, forces = _chunk_forces(job)
            out[start : start + forces.shape[0]] = forces
        return out
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for start, forces in pool.map(_chunk_forces, jobs):
            out[start : start + forces.shape[0]] = forces
    return out

"""Initial-condition generators ("spawn" functions, in Gravit's parlance).

Gravit seeds its simulations with randomized particle clouds; these
generators provide the standard n-body test configurations used by the
examples and benchmarks.  All take an explicit seed so experiments are
reproducible.
"""

from __future__ import annotations

import numpy as np

from .particles import ParticleSystem

__all__ = [
    "uniform_cube",
    "uniform_sphere",
    "plummer",
    "disc_galaxy",
    "two_galaxies",
    "cold_shell",
]


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(0xC0DA if seed is None else seed)


def uniform_cube(
    n: int, side: float = 2.0, mass: float = 1.0, seed: int | None = None
) -> ParticleSystem:
    """Cold uniform cube of side ``side`` centered at the origin."""
    rng = _rng(seed)
    pos = (rng.random((n, 3)) - 0.5) * side
    return ParticleSystem.from_arrays(pos, masses=mass / n)


def uniform_sphere(
    n: int, radius: float = 1.0, mass: float = 1.0, seed: int | None = None
) -> ParticleSystem:
    """Cold homogeneous sphere (radius ``radius``, total mass ``mass``)."""
    rng = _rng(seed)
    # Rejection-free: direction × cbrt(u) radius scaling.
    u = rng.random(n)
    vec = rng.normal(size=(n, 3))
    vec /= np.linalg.norm(vec, axis=1, keepdims=True)
    pos = vec * (radius * np.cbrt(u))[:, None]
    return ParticleSystem.from_arrays(pos, masses=mass / n)


def plummer(
    n: int,
    scale: float = 1.0,
    mass: float = 1.0,
    g: float = 1.0,
    seed: int | None = None,
) -> ParticleSystem:
    """Plummer (1911) sphere in approximate virial equilibrium.

    The standard astrophysical benchmark distribution (Aarseth, Henon &
    Wielen 1974 sampling): density ∝ (1 + r²/a²)^{-5/2} with isotropic
    velocities drawn from the local escape-speed distribution.
    """
    rng = _rng(seed)
    # Radii from the inverted cumulative mass profile.
    m_frac = rng.random(n) * 0.99 + 0.005
    r = scale / np.sqrt(m_frac ** (-2.0 / 3.0) - 1.0)
    direction = rng.normal(size=(n, 3))
    direction /= np.linalg.norm(direction, axis=1, keepdims=True)
    pos = direction * r[:, None]

    # Velocity sampling: q = v / v_esc with pdf ∝ q² (1 - q²)^{7/2}.
    q = np.empty(n)
    got = 0
    while got < n:
        cand = rng.random(n - got)
        y = rng.random(n - got) * 0.1
        ok = y < cand * cand * (1.0 - cand * cand) ** 3.5
        k = int(ok.sum())
        q[got : got + k] = cand[ok]
        got += k
    v_esc = np.sqrt(2.0 * g * mass) * (r * r + scale * scale) ** -0.25
    speed = q * v_esc
    vdir = rng.normal(size=(n, 3))
    vdir /= np.linalg.norm(vdir, axis=1, keepdims=True)
    vel = vdir * speed[:, None]
    return ParticleSystem.from_arrays(pos, vel, masses=mass / n)


def disc_galaxy(
    n: int,
    radius: float = 1.0,
    mass: float = 1.0,
    g: float = 1.0,
    center: tuple[float, float, float] = (0.0, 0.0, 0.0),
    bulk_velocity: tuple[float, float, float] = (0.0, 0.0, 0.0),
    thickness: float = 0.05,
    seed: int | None = None,
) -> ParticleSystem:
    """Rotating exponential disc with a central bulge particle.

    Particles orbit the enclosed mass on near-circular orbits — the
    configuration Gravit's screenshots are famous for.  One heavy central
    particle carries 25 % of the mass to stabilize the inner disc.
    """
    rng = _rng(seed)
    n_disc = n - 1
    r = -np.log(1.0 - rng.random(n_disc) * 0.95) * (radius / 3.0)
    theta = rng.random(n_disc) * 2.0 * np.pi
    z = rng.normal(scale=thickness * radius, size=n_disc)
    pos = np.stack(
        [r * np.cos(theta), r * np.sin(theta), z], axis=1
    )
    m_central = 0.25 * mass
    m_each = (mass - m_central) / n_disc
    # Circular speed from enclosed mass (central + disc fraction).
    order = np.argsort(r)
    enclosed = np.empty(n_disc)
    enclosed[order] = m_central + m_each * np.arange(1, n_disc + 1)
    v_circ = np.sqrt(g * enclosed / np.maximum(r, 1e-3))
    vel = np.stack(
        [-v_circ * np.sin(theta), v_circ * np.cos(theta), np.zeros(n_disc)],
        axis=1,
    )
    pos = np.vstack([[[0.0, 0.0, 0.0]], pos])
    vel = np.vstack([[[0.0, 0.0, 0.0]], vel])
    masses = np.concatenate([[m_central], np.full(n_disc, m_each)])
    pos += np.asarray(center, dtype=float)
    vel += np.asarray(bulk_velocity, dtype=float)
    return ParticleSystem.from_arrays(pos, vel, masses=masses)


def two_galaxies(
    n: int,
    separation: float = 3.0,
    approach_speed: float = 0.3,
    mass_ratio: float = 1.0,
    seed: int | None = None,
) -> ParticleSystem:
    """Two disc galaxies on a collision course (the classic demo)."""
    n1 = n // 2
    n2 = n - n1
    m1 = 1.0 / (1.0 + mass_ratio)
    m2 = 1.0 - m1
    g1 = disc_galaxy(
        n1,
        mass=m1,
        center=(-separation / 2, 0.0, 0.0),
        bulk_velocity=(approach_speed / 2, 0.02, 0.0),
        seed=seed,
    )
    g2 = disc_galaxy(
        n2,
        mass=m2,
        center=(separation / 2, 0.0, 0.3),
        bulk_velocity=(-approach_speed / 2, -0.02, 0.0),
        seed=None if seed is None else seed + 1,
    )
    merged = {
        k: np.concatenate([getattr(g1, k), getattr(g2, k)])
        for k in ("px", "py", "pz", "vx", "vy", "vz", "mass")
    }
    return ParticleSystem.from_dict(merged)


def cold_shell(
    n: int, radius: float = 1.0, mass: float = 1.0, seed: int | None = None
) -> ParticleSystem:
    """Particles at rest on a spherical shell (collapses symmetrically —
    a good stress test for force symmetry and energy tracking)."""
    rng = _rng(seed)
    vec = rng.normal(size=(n, 3))
    vec /= np.linalg.norm(vec, axis=1, keepdims=True)
    return ParticleSystem.from_arrays(vec * radius, masses=mass / n)

"""Time integrators for the particle system.

Gravit advances particles with simple Newtonian kinematics; we provide
the two standard schemes:

* :func:`euler_step` — semi-implicit (symplectic) Euler, Gravit's own
  scheme: kick then drift;
* :func:`leapfrog_step` — kick-drift-kick, second order, used by the
  examples because it conserves energy far better over long runs.

Both mutate the system in place and take a ``forces_fn`` returning
*forces* (the paper's kernel output), which is divided by mass here.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from .particles import ParticleSystem

__all__ = ["ForcesFn", "euler_step", "leapfrog_step", "integrate"]


class ForcesFn(Protocol):
    def __call__(self, system: ParticleSystem) -> np.ndarray: ...


def _accel(system: ParticleSystem, forces: np.ndarray) -> np.ndarray:
    m = system.mass.astype(np.float64)
    safe = np.where(m > 0, m, 1.0)
    return np.where(m[:, None] > 0, forces / safe[:, None], 0.0)


def euler_step(
    system: ParticleSystem, forces_fn: ForcesFn, dt: float
) -> None:
    """Semi-implicit Euler: v += a·dt, then x += v·dt."""
    a = _accel(system, forces_fn(system))
    system.vx += np.float32(dt) * a[:, 0].astype(np.float32)
    system.vy += np.float32(dt) * a[:, 1].astype(np.float32)
    system.vz += np.float32(dt) * a[:, 2].astype(np.float32)
    system.px += np.float32(dt) * system.vx
    system.py += np.float32(dt) * system.vy
    system.pz += np.float32(dt) * system.vz


def leapfrog_step(
    system: ParticleSystem, forces_fn: ForcesFn, dt: float
) -> None:
    """Kick-drift-kick leapfrog (velocity Verlet)."""
    half = np.float32(dt / 2.0)
    a = _accel(system, forces_fn(system))
    system.vx += half * a[:, 0].astype(np.float32)
    system.vy += half * a[:, 1].astype(np.float32)
    system.vz += half * a[:, 2].astype(np.float32)
    system.px += np.float32(dt) * system.vx
    system.py += np.float32(dt) * system.vy
    system.pz += np.float32(dt) * system.vz
    a = _accel(system, forces_fn(system))
    system.vx += half * a[:, 0].astype(np.float32)
    system.vy += half * a[:, 1].astype(np.float32)
    system.vz += half * a[:, 2].astype(np.float32)


def integrate(
    system: ParticleSystem,
    forces_fn: ForcesFn,
    dt: float,
    steps: int,
    scheme: Callable[[ParticleSystem, ForcesFn, float], None] = leapfrog_step,
    callback: Callable[[int, ParticleSystem], None] | None = None,
) -> ParticleSystem:
    """Advance ``steps`` steps; returns the (mutated) system."""
    if dt <= 0:
        raise ValueError("dt must be positive")
    if steps < 0:
        raise ValueError("steps must be non-negative")
    for k in range(steps):
        scheme(system, forces_fn, dt)
        if callback is not None:
            callback(k, system)
    return system

"""``repro.gravit`` — the Gravit n-body simulator, reimplemented.

Particles, initial conditions, CPU force algorithms (the paper's Fig. 1
O(n²) loop, a vectorized reference, and the Barnes-Hut tree code), time
integration, and the simulated-GPU force backend at every optimization
level of Sec. IV.
"""

from .diagnostics import (
    SystemReport,
    lagrangian_radii,
    radial_density_profile,
    system_report,
    velocity_dispersion,
    virial_ratio,
)
from .barneshut import barnes_hut_forces, barnes_hut_forces_iterative, bh_accuracy
from .forces_cpu import (
    accelerations,
    direct_forces,
    direct_forces_f32_tiled,
    naive_forces,
)
from .forces_ext import (
    ExternalField,
    direct_forces_parallel,
    external_forces,
    nearest_neighbor_forces,
    total_forces,
)
from .gpu_barneshut import bh_forces_gpu, build_bh_kernel, pack_tree
from .gpu_driver import (
    ExecutionMode,
    GpuConfig,
    GpuForceBackend,
    GpuSimulation,
    HybridTiming,
    OutOfCoreSimulation,
    PooledSimulation,
    ShardedGpuSimulation,
    device_buffers,
)
from .gpu_kernels import (
    ALL_FIELDS,
    POSMASS_FIELDS,
    KernelPlan,
    build_force_kernel,
    build_force_kernel_notile,
    build_membench_kernel,
)
from .simulation_api import Simulation, SimulationConfig
from .integrator import euler_step, integrate, leapfrog_step
from .octree import Octree, build_octree
from .particles import ParticleSystem
from .render import render_ascii, render_pgm
from .simulator import GravitSimulator
from .snapshots import (
    TrajectoryWriter,
    load_csv,
    load_npz,
    load_trajectory,
    save_csv,
    save_npz,
)
from .spawn import (
    cold_shell,
    disc_galaxy,
    plummer,
    two_galaxies,
    uniform_cube,
    uniform_sphere,
)
from .timing_cpu import CORE2DUO_2_4GHZ, CpuTimingModel

__all__ = [
    "ParticleSystem",
    "GravitSimulator",
    "Simulation",
    "SimulationConfig",
    "ExecutionMode",
    "GpuConfig",
    "GpuForceBackend",
    "GpuSimulation",
    "OutOfCoreSimulation",
    "PooledSimulation",
    "ShardedGpuSimulation",
    "device_buffers",
    "bh_forces_gpu",
    "build_bh_kernel",
    "pack_tree",
    "HybridTiming",
    "KernelPlan",
    "build_force_kernel",
    "build_force_kernel_notile",
    "build_membench_kernel",
    "POSMASS_FIELDS",
    "ALL_FIELDS",
    "naive_forces",
    "direct_forces",
    "direct_forces_f32_tiled",
    "accelerations",
    "ExternalField",
    "external_forces",
    "nearest_neighbor_forces",
    "total_forces",
    "direct_forces_parallel",
    "barnes_hut_forces",
    "barnes_hut_forces_iterative",
    "bh_accuracy",
    "Octree",
    "build_octree",
    "euler_step",
    "leapfrog_step",
    "integrate",
    "uniform_cube",
    "uniform_sphere",
    "plummer",
    "disc_galaxy",
    "two_galaxies",
    "cold_shell",
    "render_ascii",
    "render_pgm",
    "CpuTimingModel",
    "CORE2DUO_2_4GHZ",
    "SystemReport",
    "system_report",
    "virial_ratio",
    "lagrangian_radii",
    "radial_density_profile",
    "velocity_dispersion",
    "save_npz",
    "load_npz",
    "save_csv",
    "load_csv",
    "TrajectoryWriter",
    "load_trajectory",
]

"""Timing model for the original serial CPU implementation.

The paper's 87× headline compares the fully optimized GPU kernel against
Gravit's original serial C loop on a 2.4 GHz Core 2 Duo (one core).  We
cannot run that binary, so the CPU side is an analytic model with two
documented constants:

* ``clock_hz`` — the paper's testbed CPU, 2.4 GHz;
* ``cycles_per_interaction`` — cost of one body-body interaction in the
  serial inner loop (~19 flops including a sqrt and a divide, plus loads
  and loop overhead).  26 cycles is consistent both with static analysis
  of such a loop on the Core 2 (sqrt+div ≈ 6–20 cycles alone, partially
  pipelined) and with the paper's end-to-end 87× ratio; EXPERIMENTS.md
  reports how every headline number shifts per ±20 % of this constant.

A measured-throughput helper is included so examples can calibrate the
model against *this* machine's numpy implementation when absolute
realism doesn't matter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .forces_cpu import direct_forces
from .particles import ParticleSystem
from .spawn import uniform_cube

__all__ = ["CpuTimingModel", "CORE2DUO_2_4GHZ", "measure_numpy_interactions_per_s"]


@dataclass(frozen=True)
class CpuTimingModel:
    """Serial O(n²) runtime: ``t(n) = (n²·cpi + n·per_particle) / f``."""

    name: str = "Core 2 Duo @ 2.4 GHz (serial)"
    clock_hz: float = 2.4e9
    cycles_per_interaction: float = 26.0
    cycles_per_particle: float = 150.0  # integration + bookkeeping

    def predict_seconds(self, n: int) -> float:
        if n <= 0:
            raise ValueError("particle count must be positive")
        return (
            n * n * self.cycles_per_interaction
            + n * self.cycles_per_particle
        ) / self.clock_hz

    def interactions_per_second(self) -> float:
        return self.clock_hz / self.cycles_per_interaction


#: The paper's testbed host.
CORE2DUO_2_4GHZ = CpuTimingModel()


def measure_numpy_interactions_per_s(n: int = 2048, repeats: int = 3) -> float:
    """Measured pair-interaction throughput of this host's numpy path.

    Not used for the paper's figures (numpy ≠ 2009 serial C); exists so
    examples can show a live local baseline.
    """
    system = uniform_cube(n, seed=7)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        direct_forces(system)
        best = min(best, time.perf_counter() - t0)
    return n * n / best

"""Particle system: the data the Gravit simulator evolves.

A :class:`ParticleSystem` holds the seven per-particle scalars of the
paper's ``particle_t`` (position, velocity, mass) as float32 numpy arrays,
plus conversions to/from the device layouts of :mod:`repro.core.layouts`
and the conserved-quantity diagnostics used by the test suite (total
momentum, kinetic/potential energy, center of mass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..core.fields import particle_struct
from ..core.layouts import MemoryLayout, make_layout

__all__ = ["ParticleSystem"]

_FIELDS = ("px", "py", "pz", "vx", "vy", "vz", "mass")


@dataclass
class ParticleSystem:
    """``n`` particles in a closed Newtonian system (float32 storage)."""

    px: np.ndarray
    py: np.ndarray
    pz: np.ndarray
    vx: np.ndarray
    vy: np.ndarray
    vz: np.ndarray
    mass: np.ndarray

    def __post_init__(self) -> None:
        n = None
        for name in _FIELDS:
            arr = np.ascontiguousarray(getattr(self, name), dtype=np.float32)
            setattr(self, name, arr)
            if arr.ndim != 1:
                raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
            if n is None:
                n = arr.size
            elif arr.size != n:
                raise ValueError(
                    f"field {name} has {arr.size} entries, expected {n}"
                )
        if n == 0:
            raise ValueError("a particle system needs at least one particle")
        if np.any(self.mass < 0):
            raise ValueError("negative particle masses are not physical")

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        positions: np.ndarray,
        velocities: np.ndarray | None = None,
        masses: np.ndarray | float = 1.0,
    ) -> "ParticleSystem":
        """Build from an (n, 3) position array (+ optional velocities/masses)."""
        pos = np.asarray(positions, dtype=np.float32)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError(f"positions must be (n, 3), got {pos.shape}")
        n = pos.shape[0]
        if velocities is None:
            vel = np.zeros_like(pos)
        else:
            vel = np.asarray(velocities, dtype=np.float32)
            if vel.shape != pos.shape:
                raise ValueError("velocities must match positions' shape")
        m = np.broadcast_to(np.asarray(masses, dtype=np.float32), (n,)).copy()
        return cls(
            px=pos[:, 0].copy(), py=pos[:, 1].copy(), pz=pos[:, 2].copy(),
            vx=vel[:, 0].copy(), vy=vel[:, 1].copy(), vz=vel[:, 2].copy(),
            mass=m,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, np.ndarray]) -> "ParticleSystem":
        return cls(**{name: data[name] for name in _FIELDS})

    # -- views --------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.px.size

    @property
    def positions(self) -> np.ndarray:
        """(n, 3) float32 view-copy of the positions."""
        return np.stack([self.px, self.py, self.pz], axis=1)

    @property
    def velocities(self) -> np.ndarray:
        return np.stack([self.vx, self.vy, self.vz], axis=1)

    def as_dict(self) -> dict[str, np.ndarray]:
        return {name: getattr(self, name) for name in _FIELDS}

    def copy(self) -> "ParticleSystem":
        return ParticleSystem(**{k: v.copy() for k, v in self.as_dict().items()})

    # -- layout interop --------------------------------------------------------

    def device_layout(self, kind: str) -> MemoryLayout:
        """A device layout of the paper's ``particle_t`` sized for ``self``."""
        return make_layout(kind, self.n, particle_struct())

    def pack(self, layout: MemoryLayout) -> np.ndarray:
        if layout.n != self.n:
            raise ValueError(
                f"layout holds {layout.n} records, system has {self.n}"
            )
        return layout.pack(self.as_dict())

    @classmethod
    def unpack(cls, layout: MemoryLayout, words: np.ndarray) -> "ParticleSystem":
        return cls.from_dict(layout.unpack(words))

    def padded(self, multiple: int) -> "ParticleSystem":
        """Pad with zero-mass particles to a count multiple (GPU tiling).

        Zero-mass padding particles exert no force (``m_j = 0``) and their
        own computed forces are discarded by the driver, so padding never
        changes the physics — the property tests assert this.
        """
        if multiple <= 0:
            raise ValueError("padding multiple must be positive")
        pad = (-self.n) % multiple
        if pad == 0:
            return self.copy()
        out = {}
        for name in _FIELDS:
            arr = getattr(self, name)
            out[name] = np.concatenate(
                [arr, np.zeros(pad, dtype=np.float32)]
            )
        return ParticleSystem(**out)

    def take(self, n: int) -> "ParticleSystem":
        """First ``n`` particles (drops padding)."""
        if not 0 < n <= self.n:
            raise ValueError(f"cannot take {n} of {self.n} particles")
        return ParticleSystem(
            **{name: getattr(self, name)[:n].copy() for name in _FIELDS}
        )

    def remove(self, indices) -> "ParticleSystem":
        """Drop the particles at ``indices`` (or under a boolean mask).

        The population-shrinking half of a dynamic simulation (mergers,
        escapers, accretion onto a sink).  Removing every particle is an
        error — a :class:`ParticleSystem` cannot be empty.
        """
        sel = np.asarray(indices)
        if sel.dtype == bool:
            if sel.shape != (self.n,):
                raise ValueError(
                    f"mask shape {sel.shape} does not match n={self.n}"
                )
            keep = ~sel
        else:
            sel = sel.astype(np.int64)
            if sel.size and (sel.min() < -self.n or sel.max() >= self.n):
                raise IndexError(f"remove index out of range 0..{self.n - 1}")
            keep = np.ones(self.n, dtype=bool)
            keep[sel] = False
        if not keep.any():
            raise ValueError("cannot remove every particle")
        return ParticleSystem(
            **{name: getattr(self, name)[keep].copy() for name in _FIELDS}
        )

    # -- dynamic populations (block-pool backed) -------------------------------

    def spawn_into(self, pool) -> list:
        """Append this system's particles to a device block pool.

        ``pool`` is a :class:`repro.cudasim.alloc.BlockPool` registered
        with the particle struct (any layout kind).  Returns the record
        handles, in particle order; they stay valid across compaction.
        """
        handles = pool.allocate_many(self.n)
        pool.write_fields(handles, self.as_dict())
        return handles

    @classmethod
    def from_pool(cls, pool, handles=None) -> "ParticleSystem":
        """Gather a particle system back out of a block pool.

        ``handles`` selects (and orders) the records; default is every
        live record in deterministic (block, slot) order.
        """
        if handles is None:
            handles = pool.live_handles()
        return cls.from_dict(pool.read_fields(handles, _FIELDS))

    # -- diagnostics -----------------------------------------------------------

    def total_mass(self) -> float:
        return float(self.mass.sum(dtype=np.float64))

    def center_of_mass(self) -> np.ndarray:
        m = self.mass.astype(np.float64)
        total = m.sum()
        if total == 0:
            return np.zeros(3)
        return np.array(
            [
                (m * self.px).sum() / total,
                (m * self.py).sum() / total,
                (m * self.pz).sum() / total,
            ]
        )

    def momentum(self) -> np.ndarray:
        m = self.mass.astype(np.float64)
        return np.array(
            [(m * self.vx).sum(), (m * self.vy).sum(), (m * self.vz).sum()]
        )

    def kinetic_energy(self) -> float:
        m = self.mass.astype(np.float64)
        v2 = (
            self.vx.astype(np.float64) ** 2
            + self.vy.astype(np.float64) ** 2
            + self.vz.astype(np.float64) ** 2
        )
        return float(0.5 * (m * v2).sum())

    def potential_energy(self, g: float = 1.0, eps: float = 1e-2) -> float:
        """Pairwise softened potential (O(n²); intended for small n)."""
        pos = self.positions.astype(np.float64)
        m = self.mass.astype(np.float64)
        total = 0.0
        for i in range(self.n - 1):
            d = pos[i + 1 :] - pos[i]
            r = np.sqrt((d * d).sum(axis=1) + eps * eps)
            total -= g * m[i] * (m[i + 1 :] / r).sum()
        return float(total)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ParticleSystem n={self.n} mass={self.total_mass():.3g}>"

"""Barnes-Hut on the simulated GPU — the port the paper deemed hard.

Sec. I-D: *"To implement an algorithm like the Barnes-Hut Tree Code
algorithm on the GPU, the recursion has to be transformed into an
iterative equivalent"* — and the kernel restrictions it lists (no
recursion, no dynamic allocation) are exactly why the paper used the
O(n²) kernel instead.  This module builds that iterative equivalent:

* the host flattens the octree into two float4 node arrays —
  ``(com_x, com_y, com_z, mass)`` and ``(size², first_child, rope, 0)``
  — with *rope* skip pointers (:meth:`Octree.compute_ropes`) replacing
  the recursion stack entirely;
* the kernel walks ``node = accept ? rope : child`` in a per-lane
  data-dependent loop (divergent backward branch), evaluating the
  θ-MAC with the squared form ``size² < θ²·dist²`` (no sqrt), reading
  nodes through the texture cache (the upper tree levels are shared by
  every thread, so the cache absorbs most of the gather);
* predication (SELP masks) keeps inactive/rejected lanes harmless — no
  forward branches inside the loop at all.

Leaves are built with capacity 1, so a leaf's "cell approximation" is
the exact particle and the traversal is exact up to the MAC — the same
semantics as the CPU tree code; the self-interaction vanishes through
the softened d = 0 term like in the O(n²) kernel.
"""

from __future__ import annotations

import numpy as np

from ..cudasim.device import Toolchain
from ..cudasim.ir import Kernel, KernelBuilder
from ..cudasim.launch import Device, LaunchResult, compile_kernel
from .octree import Octree, build_octree
from .particles import ParticleSystem

__all__ = ["pack_tree", "build_bh_kernel", "bh_forces_gpu"]


def pack_tree(tree: Octree) -> tuple[np.ndarray, np.ndarray]:
    """Flatten the octree into the kernel's two float4-per-node arrays.

    Returns ``(posmass_words, meta_words)``; ``meta`` holds
    ``(size² = (2·half)², first_child (−1 for leaves), rope, unused)``
    as float32 (indices are exact in f32 up to 2²⁴ nodes — far beyond
    any tree the 768 MB heap can hold).
    """
    n = tree.n_nodes
    ropes = tree.compute_ropes()
    posmass = np.zeros((n, 4), dtype=np.float32)
    posmass[:, :3] = tree.com[:n]
    posmass[:, 3] = tree.mass[:n]
    # Empty cells must contribute nothing even when "accepted": their
    # mass is zero already; park their com at the cell center (done by
    # the builder) so the MAC math stays finite.
    meta = np.zeros((n, 4), dtype=np.float32)
    meta[:, 0] = (2.0 * tree.half[:n]) ** 2
    meta[:, 1] = tree.first_child[:n]
    meta[:, 2] = ropes
    return posmass.ravel(), meta.ravel()


def build_bh_kernel(block_size: int = 64, name: str | None = None) -> Kernel:
    """The stackless Barnes-Hut force kernel.

    Parameters: ``ppos`` (particle posmass float4 array), ``npos``/
    ``nmeta`` (node arrays), ``out`` (force records), ``theta2`` (θ²),
    ``eps2`` (softening²), ``n`` (particle count; tail threads exit).
    """
    if block_size % 32:
        raise ValueError("block size must be a multiple of the warp size")
    b = KernelBuilder(
        name or f"gravit_bh_b{block_size}",
        params=("ppos", "npos", "nmeta", "out", "theta2", "eps2", "n"),
    )
    i = b.reg("i")
    b.imad(i, b.sreg("ctaid"), b.sreg("ntid"), b.sreg("tid"))
    p_tail = b.pred("tail")
    b.setp("ge", p_tail, i, b.param("n"))
    b.exit(pred=p_tail)

    px, py, pz, m_i = (b.reg("px"), b.reg("py"), b.reg("pz"), b.reg("m_i"))
    b.ld_global((px, py, pz, m_i), b.imad(b.tmp("pa"), i, 16, b.param("ppos")))
    fx, fy, fz = b.reg("fx"), b.reg("fy"), b.reg("fz")
    b.mov(fx, 0.0)
    b.mov(fy, 0.0)
    b.mov(fz, 0.0)
    node = b.reg("node")
    b.mov(node, 0, comment="traversal cursor: the root")

    # ---- the data-dependent loop (the paper's 'iterative equivalent') ----
    head = "bh_head"
    from ..cudasim.isa import Instr, Op

    b.emit(Instr(Op.LABEL, target=head))
    p_live = b.pred("live")
    b.setp("ge", p_live, node, 0)
    live_f = b.selp(b.reg("live_f"), 1.0, 0.0, p_live)
    safe = b.selp(b.reg("safe"), node, 0, p_live)

    cx, cy, cz, cm = (b.tmp("cx"), b.tmp("cy"), b.tmp("cz"), b.tmp("cm"))
    b.ld_tex((cx, cy, cz, cm), b.imad(b.tmp("na"), safe, 16, b.param("npos")))
    size2, child, rope, pad = (
        b.tmp("size2"), b.tmp("child"), b.tmp("rope"), b.tmp("pad"),
    )
    b.ld_tex(
        (size2, child, rope, pad),
        b.imad(b.tmp("ma"), safe, 16, b.param("nmeta")),
    )

    dx, dy, dz = b.tmp("dx"), b.tmp("dy"), b.tmp("dz")
    b.sub(dx, cx, px)
    b.sub(dy, cy, py)
    b.sub(dz, cz, pz)
    d2 = b.tmp("d2")
    b.mul(d2, dx, dx)
    b.mad(d2, dy, dy, d2)
    b.mad(d2, dz, dz, d2)

    # MAC (squared): accept when size² < θ²·d², or at a leaf (child < 0).
    p_mac = b.pred("mac")
    thd2 = b.tmp("thd2")
    b.mul(thd2, b.param("theta2"), d2)
    b.setp("lt", p_mac, size2, thd2)
    p_leaf = b.pred("leaf")
    b.setp("lt", p_leaf, child, 0.0)
    mac_f = b.selp(b.tmp("mac_f"), 1.0, 0.0, p_mac)
    leaf_f = b.selp(b.tmp("leaf_f"), 1.0, 0.0, p_leaf)
    acc_f = b.fmax(b.tmp("acc_f"), mac_f, leaf_f)
    p_accept = b.pred("accept")
    b.setp("gt", p_accept, acc_f, 0.5)

    # Contribution, masked by accept & live (zero weight otherwise).
    r2 = b.tmp("r2")
    b.add(r2, d2, b.param("eps2"))
    inv = b.tmp("inv")
    b.rsqrt(inv, r2)
    w = b.tmp("w")
    b.mul(w, cm, inv)
    b.mul(w, w, inv)
    b.mul(w, w, inv)
    b.mul(w, w, acc_f)
    b.mul(w, w, live_f)
    b.mad(fx, dx, w, fx)
    b.mad(fy, dy, w, fy)
    b.mad(fz, dz, w, fz)

    # Advance: rope when accepted, child otherwise; parked lanes hold -1.
    nxt = b.tmp("next")
    b.selp(nxt, rope, child, p_accept)
    nf = b.f2i(b.tmp("nf"), nxt)
    b.selp(node, nf, node, p_live)
    p_cont = b.pred("cont")
    b.setp("ge", p_cont, node, 0)
    b.emit(Instr(Op.BRA, target=head, pred=p_cont))

    # ---- epilogue --------------------------------------------------------
    b.mul(fx, fx, m_i)
    b.mul(fy, fy, m_i)
    b.mul(fz, fz, m_i)
    zero = b.mov(b.tmp("z"), 0.0)
    b.st_global(b.imad(b.tmp("oa"), i, 16, b.param("out")), (fx, fy, fz, zero))
    return b.build()


def bh_forces_gpu(
    system: ParticleSystem,
    theta: float = 0.5,
    g: float = 1.0,
    eps: float = 1e-2,
    block_size: int = 64,
    toolchain: Toolchain = Toolchain.CUDA_1_0,
    device: Device | None = None,
    tree: Octree | None = None,
) -> tuple[np.ndarray, LaunchResult]:
    """Cycle-simulate the GPU tree code; returns (forces, launch result)."""
    if theta < 0:
        raise ValueError("opening angle must be non-negative")
    tree = tree or build_octree(system, leaf_capacity=1)
    node_pos, node_meta = pack_tree(tree)
    dev = device or Device(toolchain=toolchain)

    padded = system.padded(block_size)
    ppos = np.zeros((padded.n, 4), dtype=np.float32)
    ppos[:, 0] = padded.px
    ppos[:, 1] = padded.py
    ppos[:, 2] = padded.pz
    ppos[:, 3] = padded.mass

    kernel = build_bh_kernel(block_size=block_size)
    lk = compile_kernel(kernel)
    b_ppos = dev.malloc(4 * ppos.size)
    b_npos = dev.malloc(4 * node_pos.size)
    b_nmeta = dev.malloc(4 * node_meta.size)
    b_out = dev.malloc(16 * padded.n)
    try:
        dev.memcpy_htod(b_ppos, ppos.ravel())
        dev.memcpy_htod(b_npos, node_pos)
        dev.memcpy_htod(b_nmeta, node_meta)
        result = dev.launch(
            lk,
            grid=padded.n // block_size,
            block=block_size,
            params={
                "ppos": b_ppos,
                "npos": b_npos,
                "nmeta": b_nmeta,
                "out": b_out,
                "theta2": theta * theta,
                "eps2": eps * eps,
                "n": system.n,
            },
        )
        words = dev.memcpy_dtoh(b_out, 4 * padded.n).reshape(-1, 4)
    finally:
        dev.free(b_out)
        dev.free(b_nmeta)
        dev.free(b_npos)
        dev.free(b_ppos)
    forces = words[: system.n, :3].astype(np.float64) * g
    return forces, result

"""Minimal particle renderers (Gravit's "beautiful looking gravity
patterns", terminal edition).

* :func:`render_ascii` — density-mapped character art for terminal demos;
* :func:`render_pgm` — a grayscale PGM image (max-value 255, plain text
  header, binary payload) for anyone who wants actual pictures without
  a plotting dependency.
"""

from __future__ import annotations

import numpy as np

from .particles import ParticleSystem

__all__ = ["render_ascii", "render_pgm", "density_grid"]

_RAMP = " .:-=+*#%@"


def density_grid(
    system: ParticleSystem,
    width: int = 64,
    height: int = 32,
    extent: float | None = None,
    plane: str = "xy",
) -> np.ndarray:
    """2-D mass histogram of the particle projection, shape (height, width)."""
    axes = {"xy": ("px", "py"), "xz": ("px", "pz"), "yz": ("py", "pz")}
    try:
        ax, ay = axes[plane]
    except KeyError:
        raise ValueError(f"plane must be one of {sorted(axes)}") from None
    x = getattr(system, ax).astype(np.float64)
    y = getattr(system, ay).astype(np.float64)
    if extent is None:
        extent = float(max(np.abs(x).max(), np.abs(y).max(), 1e-9)) * 1.05
    grid, _, _ = np.histogram2d(
        y,
        x,
        bins=(height, width),
        range=[[-extent, extent], [-extent, extent]],
        weights=system.mass.astype(np.float64),
    )
    return grid


def render_ascii(
    system: ParticleSystem,
    width: int = 64,
    height: int = 32,
    extent: float | None = None,
    plane: str = "xy",
) -> str:
    """Log-scaled density as a block of text (top row = +y)."""
    grid = density_grid(system, width, height, extent, plane)
    peak = grid.max()
    if peak <= 0:
        return "\n".join(" " * width for _ in range(height))
    # Log-scale between the smallest and largest nonzero cell so sparse
    # outer regions stay visible next to a dense core.
    floor = grid[grid > 0].min()
    with np.errstate(divide="ignore"):
        scaled = np.where(
            grid > 0,
            np.log(grid / floor + 1.0) / np.log(peak / floor + 1.0),
            -1.0,
        )
    index = np.where(
        scaled < 0,
        0,
        1 + np.minimum((scaled * (len(_RAMP) - 2)).astype(int), len(_RAMP) - 2),
    )
    rows = ["".join(_RAMP[i] for i in row) for row in index[::-1]]
    return "\n".join(rows)


def render_pgm(
    system: ParticleSystem,
    path: str,
    width: int = 256,
    height: int = 256,
    extent: float | None = None,
    plane: str = "xy",
) -> None:
    """Write a binary PGM (P5) density image to ``path``."""
    grid = density_grid(system, width, height, extent, plane)
    peak = grid.max()
    if peak > 0:
        img = (np.log1p(grid) / np.log1p(peak) * 255).astype(np.uint8)
    else:
        img = np.zeros((height, width), dtype=np.uint8)
    with open(path, "wb") as fh:
        fh.write(f"P5\n{width} {height}\n255\n".encode())
        fh.write(img[::-1].tobytes())

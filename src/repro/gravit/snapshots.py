"""Snapshot I/O: persist and reload particle systems and trajectories.

Two formats:

* ``.npz`` — lossless float32 archive of the seven field arrays plus a
  metadata header (format version, particle count, optional user tags);
* ``.csv`` — human-readable interchange (one row per particle).

:class:`TrajectoryWriter` appends per-step snapshots into one ``.npz``
so an example/benchmark run can be replayed or analyzed offline.
"""

from __future__ import annotations

import csv
import io
import os
from dataclasses import dataclass

import numpy as np

from .particles import ParticleSystem

__all__ = [
    "save_npz",
    "load_npz",
    "save_csv",
    "load_csv",
    "TrajectoryWriter",
    "load_trajectory",
]

FORMAT_VERSION = 1
_FIELDS = ("px", "py", "pz", "vx", "vy", "vz", "mass")


def save_npz(path: str, system: ParticleSystem, **tags: str) -> None:
    """Write one system; ``tags`` become string metadata entries."""
    arrays = {f: getattr(system, f) for f in _FIELDS}
    meta = {f"tag_{k}": np.array(str(v)) for k, v in tags.items()}
    np.savez(
        path,
        format_version=np.array(FORMAT_VERSION),
        n=np.array(system.n),
        **arrays,
        **meta,
    )


def load_npz(path: str) -> tuple[ParticleSystem, dict[str, str]]:
    """Read a system plus its tag metadata."""
    with np.load(path) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"snapshot format {version} unsupported (expected "
                f"{FORMAT_VERSION})"
            )
        system = ParticleSystem(**{f: data[f] for f in _FIELDS})
        if system.n != int(data["n"]):
            raise ValueError("snapshot is corrupt: count mismatch")
        tags = {
            key[4:]: str(data[key])
            for key in data.files
            if key.startswith("tag_")
        }
    return system, tags


def save_csv(path: str, system: ParticleSystem) -> None:
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(_FIELDS)
        for i in range(system.n):
            writer.writerow(
                [repr(float(getattr(system, f)[i])) for f in _FIELDS]
            )


def load_csv(path: str) -> ParticleSystem:
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if tuple(header) != _FIELDS:
            raise ValueError(
                f"unexpected CSV header {header!r}; expected {_FIELDS}"
            )
        columns: list[list[float]] = [[] for _ in _FIELDS]
        for row in reader:
            if not row:
                continue
            if len(row) != len(_FIELDS):
                raise ValueError(f"malformed CSV row: {row!r}")
            for col, cell in zip(columns, row):
                col.append(float(cell))
    return ParticleSystem(
        **{
            f: np.asarray(col, dtype=np.float32)
            for f, col in zip(_FIELDS, columns)
        }
    )


@dataclass
class _Frame:
    step: int
    time: float


class TrajectoryWriter:
    """Accumulate per-step snapshots; ``save()`` writes one archive."""

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self._frames: list[tuple[_Frame, dict[str, np.ndarray]]] = []
        self._n: int | None = None

    def record(self, step: int, time: float, system: ParticleSystem) -> bool:
        """Store the system if ``step`` matches the cadence."""
        if step % self.every:
            return False
        if self._n is None:
            self._n = system.n
        elif system.n != self._n:
            raise ValueError("particle count changed mid-trajectory")
        self._frames.append(
            (
                _Frame(step, time),
                {f: getattr(system, f).copy() for f in _FIELDS},
            )
        )
        return True

    @property
    def n_frames(self) -> int:
        return len(self._frames)

    def save(self, path: str) -> None:
        if not self._frames:
            raise ValueError("no frames recorded")
        arrays: dict[str, np.ndarray] = {
            "format_version": np.array(FORMAT_VERSION),
            "steps": np.array([f.step for f, _ in self._frames]),
            "times": np.array([f.time for f, _ in self._frames]),
        }
        for field in _FIELDS:
            arrays[field] = np.stack(
                [data[field] for _, data in self._frames]
            )
        np.savez(path, **arrays)


def load_trajectory(path: str) -> tuple[np.ndarray, list[ParticleSystem]]:
    """Returns (times, [system per frame])."""
    with np.load(path) as data:
        if int(data["format_version"]) != FORMAT_VERSION:
            raise ValueError("unsupported trajectory format")
        times = data["times"].copy()
        frames = []
        for k in range(times.size):
            frames.append(
                ParticleSystem(**{f: data[f][k] for f in _FIELDS})
            )
    return times, frames

"""Host-side GPU driver for the Gravit force kernel.

:class:`GpuForceBackend` owns a compiled kernel configuration (layout ×
block size × unroll × ICM × toolchain) and executes it in three modes:

``functional``
    numpy evaluation of the kernel's exact float32 tile arithmetic
    (:func:`repro.gravit.forces_cpu.direct_forces_f32_tiled`) — any n,
    instant, no timing.
``cycle``
    full cycle-level simulation on the device model — exact timing and
    numerics, practical for n up to a few thousand.
``hybrid``
    the scaling mode for the paper's 40 k – 1 M sweep: cycle-simulate one
    SM running its resident blocks for two slice counts, fit the paper's
    own Eq. 2 decomposition ``T = setup + nslices · slice_cost``, and
    extrapolate to any problem size (plus PCIe transfer time, since the
    paper times copy-in → kernel → copy-out).  Validated against full
    cycle simulation in the integration tests.
"""

from __future__ import annotations

import enum
import sys
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Literal, Union

import numpy as np

from ..core.layouts import LoadStep, MemoryLayout, make_layout
from ..cudasim import profiler as _profiler
from ..telemetry import runtime as _telemetry
from ..cudasim.device import DeviceProperties, G8800GTX, Toolchain
from ..cudasim.device_group import DeviceGroup
from ..cudasim.errors import GraphError
from ..cudasim.graph import LaunchGraph
from ..cudasim.kernel_cache import CompileOptions, Unroll
from ..cudasim.launch import Device, LaunchResult
from ..cudasim.lower import LoweredKernel
from ..cudasim.memory import DevicePtr
from ..cudasim.occupancy import occupancy
from ..cudasim.xfer import StagingBuffer, TilePlan, TransferPipeline, XferStats
from .forces_cpu import direct_forces_f32_tiled
from .gpu_kernels import (
    ALL_FIELDS,
    POSMASS_FIELDS,
    KernelPlan,
    build_force_kernel,
    build_force_kernel_ooc,
    build_integrate_kernel,
    column_param_names,
    step_param_names,
)
from .particles import ParticleSystem

__all__ = [
    "ExecutionMode",
    "GpuConfig",
    "GpuForceBackend",
    "GpuSimulation",
    "HybridTiming",
    "OutOfCoreSimulation",
    "PooledSimulation",
    "ShardedGpuSimulation",
    "PCIE_BYTES_PER_S",
    "device_buffers",
]


#: Simulation classes whose legacy kwarg constructor already warned this
#: process — each warns exactly once, like compile_kernel's kwarg shim.
_legacy_ctor_warned: set[str] = set()


def _warn_legacy_ctor(cls_name: str, overrides: dict) -> None:
    """One-per-process deprecation warning for kwarg-style constructors.

    ``GpuSimulation(system, layout_kind="soa")`` and friends still work,
    but the blessed spelling is the unified front door::

        Simulation.create(SimulationConfig(layout="soa"), system)

    (or passing an explicit :class:`GpuConfig`, which never warns).
    """
    if not overrides or cls_name in _legacy_ctor_warned:
        return
    _legacy_ctor_warned.add(cls_name)
    warnings.warn(
        f"{cls_name}(system, {', '.join(sorted(overrides))}=...) keyword "
        "configuration is deprecated; build a repro.gravit.SimulationConfig "
        "and call Simulation.create(config, system) (or pass a GpuConfig)",
        DeprecationWarning,
        stacklevel=3,
    )


@contextmanager
def device_buffers(device: Device, *sizes: int):
    """Allocate device buffers that cannot leak.

    Yields one :class:`DevicePtr` per requested size and frees them all
    (in reverse order) on exit — including when the body, or a later
    allocation in the argument list, raises.  Replaces the hand-rolled
    ``try/finally`` malloc/free pairs that used to be copy-pasted around
    every launch.

    Teardown is all-or-nothing: a ``free`` that raises (e.g.
    :class:`~repro.cudasim.DoubleFreeError` for a buffer the body already
    released) does not stop the remaining buffers from being freed; the
    first failure is re-raised once every pointer has been returned —
    unless the body itself is already raising, in which case the body's
    exception propagates unmasked.
    """
    ptrs: list[DevicePtr] = []
    try:
        for nbytes in sizes:
            ptrs.append(device.malloc(nbytes))
        yield tuple(ptrs)
    finally:
        failure: BaseException | None = None
        for ptr in reversed(ptrs):
            try:
                device.free(ptr)
            except BaseException as exc:
                if failure is None:
                    failure = exc
        if failure is not None and sys.exc_info()[0] is None:
            raise failure


def _step_view(buf: DevicePtr, layout: MemoryLayout, step: LoadStep) -> DevicePtr:
    """Bounded sub-buffer of one load step's array inside ``buf``.

    The view spans exactly the step's records — kernels get a pointer
    whose extent matches the array it addresses instead of one computed
    by raw address arithmetic against the whole allocation.
    """
    extent = step.stride * (layout.n - 1) + step.vector.nbytes
    return buf.slice(step.base, extent)


def _step_params(
    buf: DevicePtr, layout: MemoryLayout, plan: KernelPlan, fields
) -> dict:
    """Per-step kernel pointer parameters for a layout living at ``buf``."""
    return {
        name: _step_view(buf, layout, step)
        for name, step in zip(plan.param_for_step, layout.read_plan(fields))
    }


class ExecutionMode(enum.Enum):
    """How :class:`GpuForceBackend` evaluates a configuration.

    Replaces the historical ``"functional" | "cycle" | "hybrid"`` string
    literals; :meth:`coerce` still accepts those spellings.
    """

    FUNCTIONAL = "functional"  #: numpy float32 math, no timing
    CYCLE = "cycle"  #: full cycle simulation — exact timing + numerics
    HYBRID = "hybrid"  #: one-SM calibration + Eq. 2 extrapolation

    @classmethod
    def coerce(cls, value: Union["ExecutionMode", str]) -> "ExecutionMode":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown execution mode {value!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from None

#: Effective host↔device bandwidth.  PCIe 1.1 x16 peaks at 4 GB/s; 2009-era
#: pinned-memory transfers sustained ~3 GB/s (measured values in the
#: bandwidthTest SDK sample of the period).
PCIE_BYTES_PER_S = 3.0e9


@dataclass(frozen=True)
class GpuConfig:
    """One point in the paper's optimization space."""

    layout_kind: str = "soaoas"
    block_size: int = 128
    unroll: int | str | Unroll | None = None  # None, factor, "full", Unroll
    licm: bool = False
    toolchain: Toolchain = Toolchain.CUDA_1_0
    eps: float = 1e-2
    g: float = 1.0

    def __post_init__(self) -> None:
        # Normalize Unroll.FULL / "full" to one canonical spelling so
        # equal configurations hash equal (GpuConfig keys result dicts).
        object.__setattr__(self, "unroll", Unroll.coerce(self.unroll))

    @property
    def compile_options(self) -> CompileOptions:
        """The compiler-option subspace of this configuration."""
        return CompileOptions(unroll=self.unroll, licm=self.licm)

    @property
    def label(self) -> str:
        bits = [self.layout_kind]
        if self.unroll:
            bits.append(
                "unroll" if self.unroll == "full" else f"unroll{self.unroll}"
            )
        if self.licm:
            bits.append("icm")
        return "+".join(bits)


@dataclass
class HybridTiming:
    """Fitted Eq. 2 model: per-SM cycles ≈ setup + nslices · slice_cost."""

    setup_cycles: float
    cycles_per_slice: float
    resident_blocks: int
    block_size: int
    device: DeviceProperties = field(repr=False, default=G8800GTX)

    def kernel_cycles(self, n: int, num_sms: int | None = None) -> float:
        """Predicted kernel wall-cycles for ``n`` particles."""
        k = self.block_size
        n_pad = -(-n // k) * k
        nslices = n_pad // k
        total_blocks = n_pad // k
        sms = num_sms or self.device.num_sms
        blocks_per_sm = -(-total_blocks // sms)
        waves = blocks_per_sm / self.resident_blocks
        return waves * (self.setup_cycles + nslices * self.cycles_per_slice)

    def kernel_seconds(self, n: int) -> float:
        return self.device.cycles_to_seconds(self.kernel_cycles(n))


class GpuForceBackend:
    """Far-field forces on the simulated GPU (paper Sec. IV)."""

    def __init__(
        self,
        config: GpuConfig | None = None,
        device: Device | None = None,
        **config_overrides,
    ) -> None:
        self.config = config or GpuConfig(**config_overrides)
        if config is not None and config_overrides:
            raise ValueError("pass either a GpuConfig or keyword overrides")
        self.device = device or Device(toolchain=self.config.toolchain)
        if self.device.toolchain is not self.config.toolchain:
            raise ValueError(
                f"device toolchain {self.device.toolchain} != config "
                f"{self.config.toolchain}"
            )
        self._lowered: LoweredKernel | None = None
        self._plan: KernelPlan | None = None
        self._hybrid: HybridTiming | None = None

    # -- compilation -----------------------------------------------------

    def compile(self) -> LoweredKernel:
        """Compile (once) the kernel for this configuration.

        Goes through :meth:`Device.compile`, so repeated backends of the
        same configuration hit the process-wide kernel cache.
        """
        if self._lowered is None:
            cfg = self.config
            layout = make_layout(cfg.layout_kind, cfg.block_size)
            kernel, plan = build_force_kernel(
                layout, block_size=cfg.block_size
            )
            self._lowered = self.device.compile(kernel, cfg.compile_options)
            self._plan = plan
        return self._lowered

    @property
    def registers_per_thread(self) -> int:
        return self.compile().reg_count

    def occupancy(self):
        lk = self.compile()
        return occupancy(
            self.device.props,
            self.config.block_size,
            lk.reg_count,
            4 * lk.shared_words,
        )

    # -- functional mode ----------------------------------------------------

    def forces(self, system: ParticleSystem) -> np.ndarray:
        """Functional mode: the kernel's float32 math, via numpy."""
        return direct_forces_f32_tiled(
            system,
            g=self.config.g,
            eps=self.config.eps,
            tile=self.config.block_size,
        )

    # -- cycle mode ------------------------------------------------------------

    def forces_cycle(
        self, system: ParticleSystem, trace=None
    ) -> tuple[np.ndarray, LaunchResult]:
        """Cycle mode: simulate the launch; returns (forces, result).

        ``trace`` is an optional per-global-access hook (e.g. a
        :class:`repro.cudasim.trace.TraceRecorder`) forwarded to the
        launch, so callers can capture the kernel's memory stream for
        coalescing replay or timeline export.
        """
        lk = self.compile()
        cfg = self.config
        with _telemetry.span(
            "gravit.forces_cycle",
            layout=cfg.layout_kind,
            n=system.n,
            label=cfg.label,
        ) as sp:
            padded = system.padded(cfg.block_size)
            layout = make_layout(cfg.layout_kind, padded.n)
            assert self._plan is not None
            with device_buffers(
                self.device, layout.size_bytes, 16 * padded.n
            ) as (buf, out):
                if _profiler.enabled():
                    # Bin profiled traffic per layout field span plus the
                    # force-accumulator output.  Regions are profiler
                    # session state, so profiled runs must stay serial.
                    regions = _profiler.regions_for_layout(layout, buf.addr)
                    regions += (("out", out.addr, out.addr + 16 * padded.n),)
                    _profiler.set_regions(regions)
                self.device.memcpy_htod(buf, padded.pack(layout))
                params = _step_params(buf, layout, self._plan, POSMASS_FIELDS)
                params.update(
                    out=out, nslices=padded.n // cfg.block_size, eps=cfg.eps
                )
                result = self.device.launch(
                    lk,
                    grid=padded.n // cfg.block_size,
                    block=cfg.block_size,
                    params=params,
                    trace=trace,
                )
                words = self.device.memcpy_dtoh(out, 4 * padded.n)
            sp.set(cycles=result.cycles)
        records = words.reshape(-1, 4)
        forces = records[: system.n, :3].astype(np.float64) * cfg.g
        return forces, result

    def forces_for_mode(
        self,
        system: ParticleSystem,
        mode: ExecutionMode | str = ExecutionMode.FUNCTIONAL,
    ) -> np.ndarray:
        """Dispatch on :class:`ExecutionMode` (strings accepted)."""
        mode = ExecutionMode.coerce(mode)
        if mode is ExecutionMode.FUNCTIONAL:
            return self.forces(system)
        if mode is ExecutionMode.CYCLE:
            return self.forces_cycle(system)[0]
        raise ValueError(
            "hybrid mode predicts wall time, not forces; use "
            "predict_seconds(n)"
        )

    # -- hybrid mode --------------------------------------------------------------

    def calibrate(
        self, slice_counts: tuple[int, int] = (2, 6)
    ) -> HybridTiming:
        """Fit the Eq. 2 timing model from two single-SM measurements.

        Runs the kernel on one simulated SM with its full resident-block
        complement for ``s1`` and ``s2`` slices; the difference isolates
        the per-slice cost, the intercept the setup cost.  Slice cost is
        independent of the slice *data* (every slice does identical
        work), so synthetic particles suffice.
        """
        if self._hybrid is not None:
            return self._hybrid
        s1, s2 = slice_counts
        if not 0 < s1 < s2:
            raise ValueError("need 0 < s1 < s2 slice counts")
        lk = self.compile()
        cfg = self.config
        occ = self.occupancy()
        resident = occ.blocks_per_sm
        # Enough records for tile loads (s2 slices) and for the resident
        # blocks' own particle indices.
        n_data = cfg.block_size * max(s2, resident)
        rng = np.random.default_rng(0xB0)
        synthetic = ParticleSystem.from_arrays(
            rng.standard_normal((n_data, 3)).astype(np.float32),
            masses=np.full(n_data, 1.0 / n_data, dtype=np.float32),
        )
        layout = make_layout(cfg.layout_kind, n_data)
        assert self._plan is not None
        cycles = {}
        with _telemetry.span(
            "gravit.calibrate", layout=cfg.layout_kind, label=cfg.label
        ):
            with device_buffers(
                self.device, layout.size_bytes, 16 * n_data
            ) as (buf, out):
                self.device.memcpy_htod(buf, synthetic.pack(layout))
                base_params = _step_params(
                    buf, layout, self._plan, POSMASS_FIELDS
                )
                for s in (s1, s2):
                    params = dict(base_params, out=out, nslices=s, eps=cfg.eps)
                    result = self.device.launch(
                        lk,
                        grid=resident,
                        block=cfg.block_size,
                        params=params,
                        sm_count=1,
                    )
                    cycles[s] = result.cycles
        per_slice = (cycles[s2] - cycles[s1]) / (s2 - s1)
        setup = max(0.0, cycles[s1] - s1 * per_slice)
        self._hybrid = HybridTiming(
            setup_cycles=setup,
            cycles_per_slice=per_slice,
            resident_blocks=resident,
            block_size=cfg.block_size,
            device=self.device.props,
        )
        return self._hybrid

    def predict_seconds(self, n: int, include_transfers: bool = True) -> float:
        """Hybrid mode: end-to-end seconds for ``n`` particles.

        Matches the paper's measurement window: host→device copy, kernel,
        device→host copy of the force records.
        """
        model = self.calibrate()
        seconds = model.kernel_seconds(n)
        if include_transfers:
            k = self.config.block_size
            n_pad = -(-n // k) * k
            layout = make_layout(self.config.layout_kind, n_pad)
            bytes_moved = layout.size_bytes + 16 * n_pad
            seconds += bytes_moved / PCIE_BYTES_PER_S
        return seconds


class GpuSimulation:
    """A fully device-resident Gravit run (cycle-simulated).

    Uploads the particle state once, then advances it with two kernel
    launches per step — the force kernel (Sec. IV) followed by the
    integration kernel — with no host round-trip in between, exactly how
    a production port would run.  This is also the executable proof of
    the paper's access-frequency grouping: the force kernel's traffic
    never touches the velocity arrays (asserted by trace in the tests).

    Intended for modest n (every step is a full cycle simulation).

    ``use_graph=True`` captures the step's launch sequence into a
    :class:`~repro.cudasim.graph.LaunchGraph` on first use (one graph
    per integration scheme) and replays it on every subsequent step with
    ``dt`` rebound — bit-identical results, near-zero host dispatch.
    """

    def __init__(
        self,
        system: ParticleSystem,
        config: GpuConfig | None = None,
        device: Device | None = None,
        use_graph: bool = False,
        **config_overrides,
    ) -> None:
        if config is not None and config_overrides:
            raise ValueError("pass either a GpuConfig or keyword overrides")
        _warn_legacy_ctor("GpuSimulation", config_overrides)
        self.config = config or GpuConfig(**config_overrides)
        self.device = device or Device(toolchain=self.config.toolchain)
        self.use_graph = bool(use_graph)
        self.graph_replays = 0
        self._graphs: dict[str, LaunchGraph] = {}
        self._gstream = None
        self.n = system.n
        cfg = self.config
        padded = system.padded(cfg.block_size)
        self.n_pad = padded.n
        self.layout = make_layout(cfg.layout_kind, self.n_pad)

        force_kernel, self._force_plan = build_force_kernel(
            self.layout, block_size=cfg.block_size
        )
        self._force_lk = self.device.compile(
            force_kernel, cfg.compile_options
        )
        integrate_kernel, self._int_plan = build_integrate_kernel(
            self.layout, block_size=cfg.block_size
        )
        self._int_lk = self.device.compile(integrate_kernel)

        self._buf = self.device.malloc(self.layout.size_bytes)
        self.device.memcpy_htod(self._buf, padded.pack(self.layout))
        self._forces = self.device.malloc(16 * self.n_pad)
        self.cycles_total = 0.0
        self.steps_done = 0

    def _params_for(self, plan: KernelPlan, fields) -> dict:
        return _step_params(self._buf, self.layout, plan, fields)

    def _launch_forces(self, trace=None) -> float:
        cfg = self.config
        grid = self.n_pad // cfg.block_size
        fparams = self._params_for(self._force_plan, POSMASS_FIELDS)
        fparams.update(out=self._forces, nslices=grid, eps=cfg.eps)
        return self.device.launch(
            self._force_lk, grid=grid, block=cfg.block_size, params=fparams,
            trace=trace,
        ).cycles

    def _launch_integrate(self, kick_dt: float, drift_dt: float) -> float:
        cfg = self.config
        grid = self.n_pad // cfg.block_size
        iparams = self._params_for(self._int_plan, ALL_FIELDS)
        iparams.update(
            forces=self._forces, kick_dt=kick_dt * cfg.g, drift_dt=drift_dt
        )
        return self.device.launch(
            self._int_lk, grid=grid, block=cfg.block_size, params=iparams
        ).cycles

    # -- graph-replay stepping ----------------------------------------------

    def _capture_step(self, stream, scheme: str) -> None:
        """Record one step's launches; integrates carry rebind tags."""
        cfg = self.config
        grid = self.n_pad // cfg.block_size

        def force() -> None:
            fparams = self._params_for(self._force_plan, POSMASS_FIELDS)
            fparams.update(out=self._forces, nslices=grid, eps=cfg.eps)
            stream.launch_async(
                self._force_lk, grid, cfg.block_size, params=fparams
            )

        def integrate(i: int) -> None:
            iparams = self._params_for(self._int_plan, ALL_FIELDS)
            # dt placeholders; every replay rebinds before running.
            iparams.update(forces=self._forces, kick_dt=0.0, drift_dt=0.0)
            stream.launch_async(
                self._int_lk, grid, cfg.block_size, params=iparams,
                tag=f"integrate{i}",
            )

        force()
        integrate(0)
        if scheme == "leapfrog":
            force()
            integrate(1)

    def _graph_for(self, scheme: str) -> LaunchGraph:
        graph = self._graphs.get(scheme)
        if graph is None:
            if self._gstream is None:
                self._gstream = self.device.stream("graph")
            graph = LaunchGraph(name=f"gpu-step-{scheme}")
            graph.begin(self._gstream)
            try:
                self._capture_step(self._gstream, scheme)
                graph.end()
            except BaseException:
                graph.abort()
                raise
            graph.instantiate()
            self._graphs[scheme] = graph
        return graph

    def _step_binds(self, dt: float, scheme: str) -> dict:
        cfg = self.config
        if scheme == "euler":
            return {"integrate0": {"kick_dt": dt * cfg.g, "drift_dt": dt}}
        if scheme == "leapfrog":
            return {
                "integrate0": {"kick_dt": dt / 2.0 * cfg.g, "drift_dt": dt},
                "integrate1": {"kick_dt": dt / 2.0 * cfg.g, "drift_dt": 0.0},
            }
        raise ValueError(f"unknown scheme {scheme!r}")

    def _step_graph(self, dt: float, scheme: str) -> float:
        binds = self._step_binds(dt, scheme)  # validates the scheme
        graph = self._graph_for(scheme)
        with _telemetry.span(
            "gravit.gpu_step", scheme=scheme, n=self.n, graph=graph.name
        ) as sp:
            result = graph.replay(binds)
            cycles = result.launch_cycles
            sp.set(cycles=cycles)
        self.graph_replays += 1
        self.cycles_total += cycles
        self.steps_done += 1
        _telemetry.inc("gravit.gpu_steps", scheme=scheme)
        return cycles

    def step(self, dt: float, force_trace=None, scheme: str = "euler") -> float:
        """One integration step on the device; returns its cycle cost.

        ``scheme``: ``"euler"`` (one force + one kick-and-drift launch)
        or ``"leapfrog"`` (kick-drift-kick: two force evaluations).
        """
        if self.use_graph and force_trace is None:
            return self._step_graph(dt, scheme)
        with _telemetry.span(
            "gravit.gpu_step", scheme=scheme, n=self.n
        ) as sp:
            if scheme == "euler":
                cycles = self._launch_forces(trace=force_trace)
                cycles += self._launch_integrate(dt, dt)
            elif scheme == "leapfrog":
                cycles = self._launch_forces(trace=force_trace)
                cycles += self._launch_integrate(dt / 2.0, dt)  # kick + drift
                cycles += self._launch_forces()
                cycles += self._launch_integrate(dt / 2.0, 0.0)  # closing kick
            else:
                raise ValueError(f"unknown scheme {scheme!r}")
            sp.set(cycles=cycles)
        self.cycles_total += cycles
        self.steps_done += 1
        _telemetry.inc("gravit.gpu_steps", scheme=scheme)
        return cycles

    def run(self, steps: int, dt: float, scheme: str = "euler") -> float:
        """Advance ``steps`` steps; returns total device cycles."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        total = 0.0
        for _ in range(steps):
            total += self.step(dt, scheme=scheme)
        return total

    def download(self) -> ParticleSystem:
        """Copy the particle state back to the host (padding dropped)."""
        words = self.device.memcpy_dtoh(self._buf, self.layout.size_words)
        return ParticleSystem.unpack(self.layout, words).take(self.n)

    def download_forces(self) -> np.ndarray:
        """Raw float32 ``(n, 3)`` force records as the kernel wrote them.

        No ``g`` scaling and no float64 widening — this is the buffer the
        integration kernel consumes, exposed for bit-exact comparisons
        (the sharded driver must reproduce it word for word).
        """
        words = self.device.memcpy_dtoh(self._forces, 4 * self.n_pad)
        return words.reshape(-1, 4)[: self.n, :3].copy()

    def close(self) -> None:
        if self._gstream is not None:
            self._gstream.close()
            self._gstream = None
            self._graphs.clear()
        self.device.free(self._forces)
        self.device.free(self._buf)

    def __enter__(self) -> "GpuSimulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class OutOfCoreSimulation:
    """Tiled Gravit run for populations larger than the device heap.

    The host keeps the packed layout image as the system of record; the
    device only ever holds (a) one *resident* row slice of full records,
    (b) a 16-byte-per-row force accumulator for that slice, and (c) a
    ping-pong pair of staging slots through which every posmass column
    tile streams.  Per phase (one force evaluation + one integration),
    for each resident slice:

    1. the copy stream uploads the slice's full records (merged
       ``row_regions`` intervals, compacted into the resident slab);
    2. every column tile of the *pre-phase* image streams through the
       :class:`~repro.cudasim.xfer.TransferPipeline` — tile *t+1*
       prefetched while the chained force kernel
       (:func:`~repro.gravit.gpu_kernels.build_force_kernel_ooc`)
       consumes tile *t*, partial accumulators round-tripping bit-exactly
       through the force buffer;
    3. the integration kernel updates the resident records in place, and
       the copy stream writes them (and the forces) back to the host
       image — double-buffered host-side too, so later slices still read
       pre-phase state.

    Column tiles launch in increasing order with the in-core kernel's
    instruction sequence, so every float32 operation happens in the same
    order on the same values: results are **bit-identical** to
    :class:`GpuSimulation` for every layout × toolchain × engine ×
    fastpath combination (the differential suite in
    ``tests/test_outofcore.py`` is the gate).

    ``tile_rows`` (default ``4 · block_size``, rounded up to a block
    multiple) sizes both the resident slice and the streamed column
    tiles.  ``tile_rows >= n`` degenerates to an in-core
    :class:`GpuSimulation` behind the same interface.
    """

    def __init__(
        self,
        system: ParticleSystem,
        config: GpuConfig | None = None,
        device: Device | None = None,
        tile_rows: int | None = None,
        use_graph: bool = False,
        **config_overrides,
    ) -> None:
        if config is not None and config_overrides:
            raise ValueError("pass either a GpuConfig or keyword overrides")
        _warn_legacy_ctor("OutOfCoreSimulation", config_overrides)
        self.config = config or GpuConfig(**config_overrides)
        cfg = self.config
        self.device = device or Device(toolchain=cfg.toolchain)
        self.n = system.n
        padded = system.padded(cfg.block_size)
        self.n_pad = padded.n
        self.layout = make_layout(cfg.layout_kind, self.n_pad)
        k = cfg.block_size
        if tile_rows is None:
            tile_rows = 4 * k
        tile_rows = int(tile_rows)
        if tile_rows < 1:
            raise ValueError(f"tile_rows must be >= 1, got {tile_rows}")
        self.tile_rows = min(-(-tile_rows // k) * k, self.n_pad)
        self.degenerate = self.tile_rows >= self.n_pad
        self.use_graph = bool(use_graph)
        self.graph_replays = 0
        #: Per-resident-slice upload+compute graphs (graph mode only);
        #: keyed by rtile index, valued (graph, ev_int, captured ntiles).
        self._graphs: dict[int, tuple] = {}
        self.cycles_total = 0.0
        self.steps_done = 0
        if self.degenerate:
            # Everything fits in one tile: the streaming machinery would
            # only re-derive the in-core schedule, so use it directly.
            self._incore: GpuSimulation | None = GpuSimulation(
                system, cfg, device=self.device, use_graph=use_graph
            )
            return
        self._incore = None

        #: Host system of record: the packed layout image (padded).
        self._image = padded.pack(self.layout)
        self._host_forces = np.zeros((self.n_pad, 4), dtype=np.float32)

        # Resident slices ship whole records; column tiles only posmass.
        self._rplan = TilePlan(self.layout, self.tile_rows)
        self._cplan = TilePlan(self.layout, self.tile_rows, POSMASS_FIELDS)
        self._psteps = self.layout.read_plan(POSMASS_FIELDS)
        self._pb_names = step_param_names(self._psteps)
        self._cb_names = column_param_names(self._psteps)
        self._isteps = self.layout.read_plan(ALL_FIELDS)

        self._resident = None
        self._forces = None
        self._staging = None
        self._copy = None
        self._compute = None
        try:
            self._resident = self.device.malloc(self._rplan.slot_bytes)
            self._forces = self.device.malloc(16 * self.tile_rows)
            self._staging = StagingBuffer(
                self.device, self._cplan.slot_bytes, slots=2
            )
            self._copy = self.device.stream("ooc-copy")
            self._compute = self.device.stream("ooc-compute")
        except Exception:
            self.close()
            raise
        self.stats = XferStats()
        self._pipeline = TransferPipeline(
            self._copy, self._compute, self._staging, self.stats
        )

        integrate_kernel, self._int_plan = build_integrate_kernel(
            self.layout, block_size=k
        )
        self._int_lk = self.device.compile(integrate_kernel)
        self._force_lks: dict[tuple[bool, bool], LoweredKernel] = {}

    def _force_lk(self, first: bool, last: bool) -> LoweredKernel:
        key = (first, last)
        if key not in self._force_lks:
            kernel, _ = build_force_kernel_ooc(
                self.layout,
                block_size=self.config.block_size,
                first=first,
                last=last,
            )
            self._force_lks[key] = self.device.compile(
                kernel, self.config.compile_options
            )
        return self._force_lks[key]

    def _phase(self, kick_dt: float, drift_dt: float) -> float:
        """One force evaluation + one integration over every row.

        Forces for *all* rows are computed from the pre-phase image
        before any integrated state is visible (the writebacks land in a
        second host image), matching the in-core driver's force-then-
        integrate launch order exactly.
        """
        cfg = self.config
        k = cfg.block_size
        image = self._image
        next_image = image.copy()
        copy0, compute0 = self._copy.cycles, self._compute.cycles
        ntiles = len(self._cplan)
        inflight = []
        for rtile in self._rplan:
            grid = rtile.rows // k

            # 1. resident slice up (full records, merged regions).
            ev_a = self._copy.record_event()
            res_bytes = 0
            for soff, words in self._rplan.host_views(rtile, image):
                self._copy.memcpy_htod_async(
                    self._resident.slice(soff, 4 * words.size), words
                )
                res_bytes += 4 * words.size
            ev_res = self._copy.record_event()
            self.stats.add_copy("resident", res_bytes, ev_a, ev_res)
            self._compute.wait_event(ev_res)
            # Fresh exposure reference: time the compute stream spent on
            # the previous slice's integrate (or waiting for this upload)
            # is not the prefetcher's failure.
            self._pipeline.mark()

            pb_params = {
                name: self._resident.slice(soff, extent)
                for name, (soff, extent) in zip(
                    self._pb_names,
                    self._rplan.step_offsets(rtile, POSMASS_FIELDS),
                )
            }

            # 2. stream every column tile, prefetch overlapped.
            for ctile in self._cplan:
                self._pipeline.stage(
                    self._make_upload(ctile, image),
                    self._make_compute(ctile, ntiles, grid, pb_params),
                )

            # 3. integrate the resident slice in place, then write back.
            iparams = {
                name: self._resident.slice(soff, extent)
                for name, (soff, extent) in zip(
                    self._int_plan.param_for_step,
                    self._rplan.step_offsets(rtile, ALL_FIELDS),
                )
            }
            iparams.update(
                forces=self._forces,
                kick_dt=kick_dt * cfg.g,
                drift_dt=drift_dt,
            )
            self._compute.launch_async(
                self._int_lk, grid, k, params=iparams
            )
            ev_int = self._compute.record_event()
            self._copy.wait_event(ev_int)
            wb_a = self._copy.record_event()
            region_futs = [
                (offset, nbytes,
                 self._copy.memcpy_dtoh_async(
                     self._resident.slice(soff, nbytes), nbytes // 4
                 ))
                for offset, nbytes, soff in rtile.regions
            ]
            force_fut = self._copy.memcpy_dtoh_async(
                self._forces, 4 * rtile.rows
            )
            wb_b = self._copy.record_event()
            self.stats.add_copy(
                "writeback",
                sum(nb for _, nb, _ in rtile.regions) + 16 * rtile.rows,
                wb_a,
                wb_b,
            )
            inflight.append((rtile, region_futs, force_fut))

        self._pipeline.synchronize()
        for rtile, region_futs, force_fut in inflight:
            for offset, nbytes, fut in region_futs:
                next_image[offset // 4 : (offset + nbytes) // 4] = fut.result()
            self._host_forces[rtile.lo : rtile.hi] = (
                force_fut.result().reshape(-1, 4)
            )
        self._image = next_image
        return max(
            self._copy.cycles - copy0, self._compute.cycles - compute0
        )

    def _capture_rtile(self, rtile, grid, ntiles, image):
        """Capture one resident slice's upload + tile-stream + integrate.

        Returns ``(graph, ev_int, ntiles)``: the instantiated graph, the
        integrate-done event the op-by-op writeback gates on (it
        re-fires with fresh cycles every replay), and the column-tile
        count baked into the capture.  Uses a *fresh*
        :class:`TransferPipeline` (sharing :attr:`stats`) so slot gates
        never reference another capture's events; the cross-slice gates
        they replace are cycle-neutral (the integrate wait already
        orders slot reuse).  The captured host→device views alias
        ``image`` — :meth:`_phase_graph` updates that buffer in place so
        replays always read the current pre-phase state.
        """
        cfg = self.config
        k = cfg.block_size
        graph = LaunchGraph(name=f"ooc-slice{rtile.index}")
        graph.begin(self._copy, self._compute)
        try:
            pipeline = TransferPipeline(
                self._copy, self._compute, self._staging, self.stats
            )
            ev_a = self._copy.record_event()
            res_bytes = 0
            for soff, words in self._rplan.host_views(rtile, image):
                self._copy.memcpy_htod_async(
                    self._resident.slice(soff, 4 * words.size), words
                )
                res_bytes += 4 * words.size
            ev_res = self._copy.record_event()
            self.stats.add_copy("resident", res_bytes, ev_a, ev_res)
            self._compute.wait_event(ev_res)
            pipeline.mark()

            pb_params = {
                name: self._resident.slice(soff, extent)
                for name, (soff, extent) in zip(
                    self._pb_names,
                    self._rplan.step_offsets(rtile, POSMASS_FIELDS),
                )
            }
            for ctile in self._cplan:
                pipeline.stage(
                    self._make_upload(ctile, image),
                    self._make_compute(ctile, ntiles, grid, pb_params),
                )

            iparams = {
                name: self._resident.slice(soff, extent)
                for name, (soff, extent) in zip(
                    self._int_plan.param_for_step,
                    self._rplan.step_offsets(rtile, ALL_FIELDS),
                )
            }
            iparams.update(forces=self._forces, kick_dt=0.0, drift_dt=0.0)
            self._compute.launch_async(
                self._int_lk, grid, k, params=iparams, tag="integrate"
            )
            ev_int = self._compute.record_event()
            graph.end()
        except BaseException:
            graph.abort()
            raise
        graph.instantiate()
        return graph, ev_int, ntiles

    def _phase_graph(self, kick_dt: float, drift_dt: float) -> float:
        """Graph-mode :meth:`_phase`: replay per-slice captured graphs.

        The device→host writebacks stay op-by-op (the host consumes
        their results this phase); everything upstream of the integrate
        event replays from the slice's captured graph.  Bit-identical to
        :meth:`_phase` — same op order on both streams, same cursor
        arithmetic — with host dispatch collapsed to one replay call per
        resident slice.
        """
        cfg = self.config
        k = cfg.block_size
        image = self._image
        next_image = image.copy()
        copy0, compute0 = self._copy.cycles, self._compute.cycles
        ntiles = len(self._cplan)
        binds = {
            "integrate": {"kick_dt": kick_dt * cfg.g, "drift_dt": drift_dt}
        }
        inflight = []
        for rtile in self._rplan:
            grid = rtile.rows // k
            entry = self._graphs.get(rtile.index)
            if entry is None:
                entry = self._capture_rtile(rtile, grid, ntiles, image)
                self._graphs[rtile.index] = entry
            graph, ev_int, cap_ntiles = entry
            if cap_ntiles != ntiles:
                raise GraphError(
                    f"graph {graph.name!r} captured {cap_ntiles} column "
                    f"tiles but the plan now has {ntiles}; the capture "
                    "no longer matches the tile schedule — re-create the "
                    "simulation (or drop its graphs) after resizing"
                )
            # Replay advances the cursors inline, so the previous
            # slice's writebacks must be fully drained first (they read
            # the resident slab this replay overwrites).
            self._copy.synchronize()
            self._compute.synchronize()
            graph.replay(binds)
            self.graph_replays += 1

            self._copy.wait_event(ev_int)
            wb_a = self._copy.record_event()
            region_futs = [
                (offset, nbytes,
                 self._copy.memcpy_dtoh_async(
                     self._resident.slice(soff, nbytes), nbytes // 4
                 ))
                for offset, nbytes, soff in rtile.regions
            ]
            force_fut = self._copy.memcpy_dtoh_async(
                self._forces, 4 * rtile.rows
            )
            wb_b = self._copy.record_event()
            self.stats.add_copy(
                "writeback",
                sum(nb for _, nb, _ in rtile.regions) + 16 * rtile.rows,
                wb_a,
                wb_b,
            )
            inflight.append((rtile, region_futs, force_fut))

        self._copy.synchronize()
        self._compute.synchronize()
        for rtile, region_futs, force_fut in inflight:
            for offset, nbytes, fut in region_futs:
                next_image[offset // 4 : (offset + nbytes) // 4] = fut.result()
            self._host_forces[rtile.lo : rtile.hi] = (
                force_fut.result().reshape(-1, 4)
            )
        # In place, NOT a rebind: the captured upload views alias this
        # buffer, so replays keep reading the current pre-phase state.
        image[:] = next_image
        return max(
            self._copy.cycles - copy0, self._compute.cycles - compute0
        )

    def _make_upload(self, ctile, image):
        def upload(slot: DevicePtr) -> int:
            total = 0
            for soff, words in self._cplan.host_views(ctile, image):
                self._copy.memcpy_htod_async(
                    slot.slice(soff, 4 * words.size), words
                )
                total += 4 * words.size
            return total

        return upload

    def _make_compute(self, ctile, ntiles, grid, pb_params):
        cfg = self.config

        def compute(slot: DevicePtr) -> None:
            params = dict(pb_params)
            for name, (soff, extent) in zip(
                self._cb_names, self._cplan.step_offsets(ctile)
            ):
                params[name] = slot.slice(soff, extent)
            params.update(
                out=self._forces,
                nslices=ctile.rows // cfg.block_size,
                eps=cfg.eps,
            )
            lk = self._force_lk(
                ctile.index == 0, ctile.index == ntiles - 1
            )
            self._compute.launch_async(
                lk, grid, cfg.block_size, params=params
            )

        return compute

    def step(self, dt: float, scheme: str = "euler") -> float:
        """One integration step, streamed; returns its cycle cost."""
        if self._incore is not None:
            cycles = self._incore.step(dt, scheme=scheme)
            self.cycles_total = self._incore.cycles_total
            self.steps_done = self._incore.steps_done
            self.graph_replays = self._incore.graph_replays
            return cycles
        phase = self._phase_graph if self.use_graph else self._phase
        with _telemetry.span(
            "gravit.ooc_step", scheme=scheme, n=self.n,
            tile_rows=self.tile_rows,
        ) as sp:
            if scheme == "euler":
                cycles = phase(dt, dt)
            elif scheme == "leapfrog":
                cycles = phase(dt / 2.0, dt)  # kick + drift
                cycles += phase(dt / 2.0, 0.0)  # closing kick
            else:
                raise ValueError(f"unknown scheme {scheme!r}")
            sp.set(cycles=cycles)
        self.cycles_total += cycles
        self.steps_done += 1
        _telemetry.inc("gravit.ooc_steps", scheme=scheme)
        return cycles

    def run(self, steps: int, dt: float, scheme: str = "euler") -> float:
        """Advance ``steps`` steps; returns total device cycles."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        total = 0.0
        for _ in range(steps):
            total += self.step(dt, scheme=scheme)
        return total

    def download(self) -> ParticleSystem:
        """The current particle state (padding dropped) — no device I/O:
        the host image *is* the system of record."""
        if self._incore is not None:
            return self._incore.download()
        return ParticleSystem.unpack(self.layout, self._image).take(self.n)

    def download_forces(self) -> np.ndarray:
        """Raw float32 ``(n, 3)`` forces of the last evaluation, matching
        :meth:`GpuSimulation.download_forces` word for word."""
        if self._incore is not None:
            return self._incore.download_forces()
        return self._host_forces[: self.n, :3].copy()

    def xfer_summary(self) -> dict:
        """Transfer-pipeline accounting (see :class:`XferStats.summary`);
        empty when degenerate (no streaming happened)."""
        if self._incore is not None:
            return {}
        return self.stats.summary()

    def close(self) -> None:
        if self._incore is not None:
            self._incore.close()
            self._incore = None
            return
        for stream in (self._compute, self._copy):
            if stream is not None:
                stream.close()
        self._compute = self._copy = None
        if self._staging is not None:
            self._staging.free()
            self._staging = None
        for attr in ("_forces", "_resident"):
            ptr = getattr(self, attr)
            if ptr is not None:
                self.device.free(ptr)
                setattr(self, attr, None)

    def __enter__(self) -> "OutOfCoreSimulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardedGpuSimulation:
    """:class:`GpuSimulation` row-block-sharded over a :class:`DeviceGroup`.

    The multi-GPU decomposition of the O(n²) far-field kernel (the
    row-block scheme of Belleman et al.'s multi-card ports): each of the
    ``M`` devices holds a *full replica* of the particle layout plus a
    full-size force buffer, and computes forces for its contiguous slice
    of particle rows over **all** ``n`` column particles.  Per step:

    1. every shard launches the force + integration kernels for its rows
       on its own stream (asynchronously, so shards overlap);
    2. the host synchronizes, then each owner broadcasts the *posmass*
       regions of its rows to every peer replica
       (:meth:`Stream.memcpy_peer_async`, PCIe-costed; host-staged when
       the group lacks peer access) — velocities stay owner-local, the
       access-frequency grouping argument again;
    3. the step's modeled cost is the slowest shard's compute time plus
       the slowest owner's broadcast time.

    Row slicing enters the kernels as a single integer ``row0`` offset on
    the thread index (``row_offset=True`` kernel variants), so the
    per-particle float instruction sequence is *unchanged* — state and
    forces are bit-identical to a single-device :class:`GpuSimulation`
    for every layout, toolchain, SM engine and fastpath setting (pinned
    by the tests).

    How many bytes the broadcast moves per row is a layout property
    (:meth:`MemoryLayout.row_regions`): interleaved layouts (aos/aoas)
    ship whole interleaved records, grouped layouts (soa/soaoas) ship
    only the posmass group — the copy-overhead asymmetry the ``multigpu``
    experiment measures.
    """

    def __init__(
        self,
        system: ParticleSystem,
        config: GpuConfig | None = None,
        group: DeviceGroup | None = None,
        num_devices: int = 2,
        device_props: DeviceProperties = G8800GTX,
        sm_engine: str | None = None,
        fastpath: bool | int | None = None,
        peer_access: bool = True,
        use_graph: bool = False,
        **config_overrides,
    ) -> None:
        if config is not None and config_overrides:
            raise ValueError("pass either a GpuConfig or keyword overrides")
        _warn_legacy_ctor("ShardedGpuSimulation", config_overrides)
        self.config = config or GpuConfig(**config_overrides)
        cfg = self.config
        self.group = group or DeviceGroup(
            num_devices,
            props=device_props,
            toolchain=cfg.toolchain,
            sm_engine=sm_engine,
            fastpath=fastpath,
            peer_access=peer_access,
        )
        self.num_devices = len(self.group)
        self.n = system.n
        padded = system.padded(cfg.block_size)
        self.n_pad = padded.n
        self.layout = make_layout(cfg.layout_kind, self.n_pad)

        # Contiguous block partition: device d owns blocks [b0, b1) and
        # therefore rows [b0·k, b1·k).  Trailing devices may own nothing
        # when there are fewer blocks than devices.
        k = cfg.block_size
        blocks = self.n_pad // k
        per = -(-blocks // self.num_devices)
        self._row_ranges: list[tuple[int, int]] = []
        for d in range(self.num_devices):
            b0 = min(d * per, blocks)
            b1 = min(b0 + per, blocks)
            self._row_ranges.append((b0 * k, b1 * k))

        force_kernel, self._force_plan = build_force_kernel(
            self.layout, block_size=k, row_offset=True
        )
        integrate_kernel, self._int_plan = build_integrate_kernel(
            self.layout, block_size=k, row_offset=True
        )
        # One compile per kernel for the whole group: members share the
        # group's content-addressed cache, so dev1.. are cache hits.
        self._force_lks = [
            dev.compile(force_kernel, cfg.compile_options)
            for dev in self.group
        ]
        self._int_lks = [dev.compile(integrate_kernel) for dev in self.group]

        packed = padded.pack(self.layout)
        self._bufs = [dev.malloc(self.layout.size_bytes) for dev in self.group]
        self._forces = [dev.malloc(16 * self.n_pad) for dev in self.group]
        for dev, buf in zip(self.group, self._bufs):
            dev.memcpy_htod(buf, packed)
        self._streams = [
            dev.stream(f"shard{d}") for d, dev in enumerate(self.group)
        ]
        #: Merged posmass byte regions per owner — what a broadcast ships.
        self._regions = [
            self.layout.row_regions(r0, r1, POSMASS_FIELDS) if r0 < r1 else ()
            for r0, r1 in self._row_ranges
        ]

        self.cycles_total = 0.0
        self.compute_cycles_total = 0.0
        self.copy_cycles_total = 0.0
        self.copy_bytes_total = 0
        self.steps_done = 0
        self.use_graph = bool(use_graph)
        self.graph_replays = 0
        self._graphs: dict[str, LaunchGraph] = {}
        #: Broadcast bytes one replay of each scheme's graph ships.
        self._graph_copy_bytes: dict[str, int] = {}

    @property
    def row_ranges(self) -> tuple[tuple[int, int], ...]:
        """Per-device owned particle-row ranges ``[lo, hi)``."""
        return tuple(self._row_ranges)

    # -- per-shard launches --------------------------------------------------

    def _shard_params(self, d: int, plan: KernelPlan, fields) -> dict:
        return _step_params(self._bufs[d], self.layout, plan, fields)

    def _launch_forces(self, d: int) -> None:
        cfg = self.config
        r0, r1 = self._row_ranges[d]
        grid = (r1 - r0) // cfg.block_size
        params = self._shard_params(d, self._force_plan, POSMASS_FIELDS)
        params.update(
            out=self._forces[d],
            nslices=self.n_pad // cfg.block_size,
            eps=cfg.eps,
            row0=r0,
        )
        self._streams[d].launch_async(
            self._force_lks[d], grid=grid, block=cfg.block_size, params=params
        )

    def _launch_integrate(
        self, d: int, kick_dt: float, drift_dt: float,
        tag: str | None = None,
    ) -> None:
        cfg = self.config
        r0, r1 = self._row_ranges[d]
        grid = (r1 - r0) // cfg.block_size
        params = self._shard_params(d, self._int_plan, ALL_FIELDS)
        params.update(
            forces=self._forces[d],
            kick_dt=kick_dt * cfg.g,
            drift_dt=drift_dt,
            row0=r0,
        )
        self._streams[d].launch_async(
            self._int_lks[d], grid=grid, block=cfg.block_size, params=params,
            tag=tag,
        )

    def _active(self) -> list[int]:
        return [
            d for d, (r0, r1) in enumerate(self._row_ranges) if r0 < r1
        ]

    def _sync_delta(self, start: list[float]) -> float:
        """Synchronize all shard streams; max per-stream cycle advance."""
        for s in self._streams:
            s.synchronize()
        return max(
            (s.cycles - c0 for s, c0 in zip(self._streams, start)),
            default=0.0,
        )

    def _issue_exchange(self) -> int:
        """Enqueue every owner's posmass broadcast; returns bytes shipped.

        Copies are issued on the owner's stream, so different owners'
        broadcasts overlap.  Shared between the op-by-op step and graph
        capture — the captured op sequence is this exact one.
        """
        via_host = self.group.via_host
        total = 0
        for d in self._active():
            stream = self._streams[d]
            for e, peer in enumerate(self.group):
                if e == d:
                    continue
                for offset, nbytes in self._regions[d]:
                    stream.memcpy_peer_async(
                        self._bufs[d].slice(offset, nbytes),
                        peer,
                        self._bufs[e].slice(offset, nbytes),
                        nbytes // 4,
                        via_host=via_host,
                    )
                    total += nbytes
        return total

    def _exchange_posmass(self) -> float:
        """Broadcast every owner's posmass rows to all peer replicas.

        Returns the modeled copy cycles added this exchange (the slowest
        owner's makespan).
        """
        if self.num_devices == 1:
            return 0.0
        start = [s.cycles for s in self._streams]
        self.copy_bytes_total += self._issue_exchange()
        return self._sync_delta(start)

    # -- graph-replay stepping ----------------------------------------------

    @staticmethod
    def _phases(dt: float, scheme: str) -> list[tuple[float, float, bool]]:
        """``(kick_dt, drift_dt, drifts)`` per launch phase of ``scheme``."""
        if scheme == "euler":
            return [(dt, dt, True)]
        if scheme == "leapfrog":
            return [(dt / 2.0, dt, True), (dt / 2.0, 0.0, False)]
        raise ValueError(f"unknown scheme {scheme!r}")

    def _graph_for(self, scheme: str) -> LaunchGraph:
        """Capture (once per scheme) the whole step across all shards.

        Marker pairs bracket each phase's compute and broadcast spans so
        a replay yields the same compute/copy split the op-by-op path
        derives from its host-sync deltas.  ``kick_dt``/``drift_dt`` are
        captured as placeholders; every replay rebinds them.
        """
        graph = self._graphs.get(scheme)
        if graph is None:
            graph = LaunchGraph(name=f"sharded-step-{scheme}")
            graph.begin(*self._streams)
            try:
                copy_bytes = 0
                for p, (_, _, drifts) in enumerate(self._phases(0.0, scheme)):
                    graph.marker(f"p{p}.start")
                    for d in self._active():
                        self._launch_forces(d)
                        self._launch_integrate(d, 0.0, 0.0, tag=f"int{p}.{d}")
                    graph.marker(f"p{p}.compute")
                    if drifts and self.num_devices > 1:
                        copy_bytes += self._issue_exchange()
                    graph.marker(f"p{p}.copy")
                graph.end()
            except BaseException:
                graph.abort()
                raise
            graph.instantiate()
            self._graphs[scheme] = graph
            self._graph_copy_bytes[scheme] = copy_bytes
        return graph

    def _step_binds(self, dt: float, scheme: str) -> dict:
        cfg = self.config
        binds = {}
        for p, (kick_dt, drift_dt, _) in enumerate(self._phases(dt, scheme)):
            for d in self._active():
                binds[f"int{p}.{d}"] = {
                    "kick_dt": kick_dt * cfg.g, "drift_dt": drift_dt,
                }
        return binds

    def _step_graph(self, dt: float, scheme: str) -> float:
        binds = self._step_binds(dt, scheme)  # validates the scheme
        graph = self._graph_for(scheme)
        with _telemetry.span(
            "gravit.sharded_step",
            scheme=scheme,
            n=self.n,
            devices=self.num_devices,
            graph=graph.name,
        ) as sp:
            result = graph.replay(binds)
            compute = 0.0
            copy = 0.0
            for p in range(len(self._phases(dt, scheme))):
                m0 = result.markers[f"p{p}.start"]
                m1 = result.markers[f"p{p}.compute"]
                m2 = result.markers[f"p{p}.copy"]
                compute += max(
                    (b - a for a, b in zip(m0, m1)), default=0.0
                )
                copy += max(
                    (b - a for a, b in zip(m1, m2)), default=0.0
                )
            cycles = compute + copy
            sp.set(cycles=cycles, copy_cycles=copy)
        self.graph_replays += 1
        self.copy_bytes_total += self._graph_copy_bytes[scheme]
        self.compute_cycles_total += compute
        self.copy_cycles_total += copy
        self.cycles_total += cycles
        self.steps_done += 1
        _telemetry.inc("gravit.sharded_steps", scheme=scheme)
        return cycles

    # -- stepping ------------------------------------------------------------

    def step(self, dt: float, scheme: str = "euler") -> float:
        """One sharded step; returns its modeled cycle cost.

        Same schemes as :meth:`GpuSimulation.step`.  A position exchange
        follows every launch phase whose integration drifts positions
        (the leapfrog closing kick has ``drift_dt=0``, so it needs none).
        """
        if self.use_graph:
            return self._step_graph(dt, scheme)
        with _telemetry.span(
            "gravit.sharded_step",
            scheme=scheme,
            n=self.n,
            devices=self.num_devices,
        ) as sp:
            phases = self._phases(dt, scheme)
            compute = 0.0
            copy = 0.0
            for kick_dt, drift_dt, drifts in phases:
                start = [s.cycles for s in self._streams]
                for d in self._active():
                    self._launch_forces(d)
                    self._launch_integrate(d, kick_dt, drift_dt)
                compute += self._sync_delta(start)
                if drifts:
                    copy += self._exchange_posmass()
            cycles = compute + copy
            sp.set(cycles=cycles, copy_cycles=copy)
        self.compute_cycles_total += compute
        self.copy_cycles_total += copy
        self.cycles_total += cycles
        self.steps_done += 1
        _telemetry.inc("gravit.sharded_steps", scheme=scheme)
        return cycles

    def run(self, steps: int, dt: float, scheme: str = "euler") -> float:
        """Advance ``steps`` steps; returns total modeled cycles."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        total = 0.0
        for _ in range(steps):
            total += self.step(dt, scheme=scheme)
        return total

    # -- state ---------------------------------------------------------------

    def download(self) -> ParticleSystem:
        """Assemble the particle state from each shard's owned rows."""
        fields = {
            name: np.zeros(self.n_pad, dtype=np.float32)
            for name in self.layout.field_names
        }
        for d in self._active():
            r0, r1 = self._row_ranges[d]
            words = self.group[d].memcpy_dtoh(
                self._bufs[d], self.layout.size_words
            )
            shard = self.layout.unpack(words)
            for name, arr in shard.items():
                fields[name][r0:r1] = arr[r0:r1]
        return ParticleSystem.from_dict(fields).take(self.n)

    def download_forces(self) -> np.ndarray:
        """Raw float32 ``(n, 3)`` forces assembled from the owners.

        Bit-comparable against :meth:`GpuSimulation.download_forces`.
        """
        out = np.zeros((self.n_pad, 4), dtype=np.float32)
        for d in self._active():
            r0, r1 = self._row_ranges[d]
            words = self.group[d].memcpy_dtoh(self._forces[d], 4 * self.n_pad)
            out[r0:r1] = words.reshape(-1, 4)[r0:r1]
        return out[: self.n, :3].copy()

    def close(self) -> None:
        self._graphs.clear()
        for stream in self._streams:
            stream.close()
        for dev, buf, forces in zip(self.group, self._bufs, self._forces):
            dev.free(forces)
            dev.free(buf)

    def __enter__(self) -> "ShardedGpuSimulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PooledSimulation:
    """Device-resident run over a *dynamic* particle population.

    The :class:`~repro.cudasim.alloc.BlockPool` is the system of record:
    particles live in its (possibly sparse) blocks and the population can
    grow (:meth:`spawn`) or shrink (:meth:`remove`) between steps — the
    use case Gravit's static ``cudaMalloc``-everything port cannot serve.
    Stepping gathers the live records into a contiguous staging layout
    (the host-mediated analogue of a defragmenting gather kernel),
    advances it with :class:`GpuSimulation`'s two-kernel step, and
    scatters the result back to the pool records on :meth:`writeback` —
    record handles stay stable throughout, including across pool
    compaction.  Staging buffers come from the *same* device heap as the
    pool's blocks, so heap pressure and fragmentation are real.
    """

    def __init__(
        self,
        pool,
        device: Device,
        config: GpuConfig | None = None,
        handles=None,
        **config_overrides,
    ) -> None:
        if getattr(device, "gmem", None) is not pool.memory:
            raise ValueError(
                "device must own the pool's heap "
                "(expected device.gmem is pool.memory)"
            )
        if config is not None and config_overrides:
            raise ValueError("pass either a GpuConfig or keyword overrides")
        _warn_legacy_ctor("PooledSimulation", config_overrides)
        self.config = config or GpuConfig(**config_overrides)
        self.pool = pool
        self.device = device
        self.handles = (
            list(handles) if handles is not None else pool.live_handles()
        )
        self._sim: GpuSimulation | None = None
        self.cycles_total = 0.0
        self.steps_done = 0

    @property
    def n(self) -> int:
        return len(self.handles)

    # -- population changes ------------------------------------------------

    def spawn(self, system: ParticleSystem) -> list:
        """Add particles (allocated from the pool); returns their handles."""
        self._flush()
        new = system.spawn_into(self.pool)
        self.handles.extend(new)
        return new

    def remove(self, handles) -> None:
        """Kill particles: their pool records are freed immediately."""
        self._flush()
        doomed = {h.rid for h in handles}
        for h in handles:
            self.pool.free(h)
        self.handles = [h for h in self.handles if h.rid not in doomed]

    def compact(self):
        """Compact the pool (staged state is written back first)."""
        self._flush()
        return self.pool.compact()

    # -- stepping ----------------------------------------------------------

    def _flush(self) -> None:
        """Scatter staged state back to the pool; drop the staging sim."""
        if self._sim is not None:
            state = self._sim.download()
            self.pool.write_fields(self.handles, state.as_dict())
            self._sim.close()
            self._sim = None

    def _staging(self) -> GpuSimulation:
        if self._sim is None:
            if not self.handles:
                raise ValueError("pooled simulation has no live particles")
            state = ParticleSystem.from_pool(self.pool, self.handles)
            self._sim = GpuSimulation(state, self.config, device=self.device)
        return self._sim

    def step(self, dt: float, scheme: str = "euler") -> float:
        """One device step over the current population; returns cycles."""
        cycles = self._staging().step(dt, scheme=scheme)
        self.cycles_total += cycles
        self.steps_done += 1
        return cycles

    def run(self, steps: int, dt: float, scheme: str = "euler") -> float:
        if steps < 0:
            raise ValueError("steps must be non-negative")
        total = 0.0
        for _ in range(steps):
            total += self.step(dt, scheme=scheme)
        return total

    # -- state -------------------------------------------------------------

    def state(self) -> ParticleSystem:
        """Current particle state (staged if mid-epoch, else from pool)."""
        if self._sim is not None:
            return self._sim.download()
        return ParticleSystem.from_pool(self.pool, self.handles)

    def writeback(self) -> ParticleSystem:
        """Flush staged state to the pool and return it."""
        self._flush()
        return ParticleSystem.from_pool(self.pool, self.handles)

    def close(self) -> None:
        """Flush to the pool and release staging buffers (pool survives)."""
        self._flush()

    def __enter__(self) -> "PooledSimulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

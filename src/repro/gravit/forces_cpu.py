"""CPU far-field force calculation: the paper's two algorithms, host-side.

* :func:`naive_forces` — the literal O(n²) double loop of the paper's
  Fig. 1 pseudo-code.  Pure Python, the correctness oracle for tiny n.
* :func:`direct_forces` — the same O(n²) sum vectorized with numpy
  (chunked to bound memory).  The workhorse reference for all tests.
* :func:`direct_forces_f32_tiled` — float32 math in the exact slice order
  of the GPU kernel (K-particle tiles), used as the GPU driver's
  *functional mode*: bit-for-bit comparable accumulation structure
  without simulating instructions.

All return **forces** (the paper's kernel computes ``F_i``, i.e. the
acceleration sum multiplied by ``m_i``), shape (n, 3) float64 unless noted.
Physics: softened Newtonian gravity,

    F_i = G · m_i · Σ_j  m_j (r_j − r_i) / (|r_j − r_i|² + ε²)^{3/2}

with the self term naturally zero (j = i contributes 0/ε³·m_i·0 = 0), the
same trick the GPU kernel uses instead of an ``i ≠ j`` branch.
"""

from __future__ import annotations

import math

import numpy as np

from .particles import ParticleSystem

__all__ = [
    "naive_forces",
    "direct_forces",
    "direct_forces_f32_tiled",
    "accelerations",
]


def naive_forces(
    system: ParticleSystem, g: float = 1.0, eps: float = 1e-2
) -> np.ndarray:
    """The paper's Fig. 1 double loop, verbatim (O(n²), pure Python)."""
    n = system.n
    px, py, pz = system.px, system.py, system.pz
    m = system.mass
    eps2 = eps * eps
    out = np.zeros((n, 3), dtype=np.float64)
    for i in range(n):
        fx = fy = fz = 0.0
        for j in range(n):
            if i == j:
                continue
            dx = float(px[j]) - float(px[i])
            dy = float(py[j]) - float(py[i])
            dz = float(pz[j]) - float(pz[i])
            r2 = dx * dx + dy * dy + dz * dz + eps2
            inv3 = 1.0 / (r2 * math.sqrt(r2))
            w = float(m[j]) * inv3
            fx += dx * w
            fy += dy * w
            fz += dz * w
        out[i] = (fx, fy, fz)
    out *= g * m[:, None].astype(np.float64)
    return out


def direct_forces(
    system: ParticleSystem,
    g: float = 1.0,
    eps: float = 1e-2,
    chunk: int = 2048,
) -> np.ndarray:
    """Vectorized O(n²) forces in float64 (chunked broadcasting)."""
    pos = system.positions.astype(np.float64)
    m = system.mass.astype(np.float64)
    n = system.n
    eps2 = eps * eps
    # Bound the (n × chunk × 3) temporary to ~100 MB regardless of n.
    chunk = max(16, min(chunk, 4_000_000 // max(n, 1) + 1))
    out = np.zeros((n, 3), dtype=np.float64)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        # d[i, j] = r_{start+j} - r_i, shape (n, c, 3)
        d = pos[None, start:stop, :] - pos[:, None, :]
        r2 = (d * d).sum(axis=2) + eps2
        with np.errstate(divide="ignore"):
            inv3 = r2 ** -1.5
        # Self term (and exactly coincident unsoftened pairs): d == 0
        # would give 0 · inf = NaN; the physical contribution is 0.
        inv3[~np.isfinite(inv3)] = 0.0
        w = m[start:stop][None, :] * inv3  # (n, c)
        out += (d * w[:, :, None]).sum(axis=1)
    return out * (g * m[:, None])


def direct_forces_f32_tiled(
    system: ParticleSystem,
    g: float = 1.0,
    eps: float = 1e-2,
    tile: int = 128,
) -> np.ndarray:
    """Float32 forces accumulated tile-by-tile in the GPU kernel's order.

    Mirrors the device kernel's arithmetic: float32 throughout,
    ``rsqrt``-style evaluation, K-particle slices accumulated in slice
    order, zero-mass padding of the trailing tile.  Agreement with the
    cycle-level simulator is asserted by the integration tests; agreement
    with :func:`direct_forces` is tolerance-based (float32 vs float64).
    """
    padded = system.padded(tile)
    n_pad = padded.n
    pos = padded.positions.astype(np.float32)
    m = padded.mass.astype(np.float32)
    eps2 = np.float32(eps) * np.float32(eps)
    acc = np.zeros((n_pad, 3), dtype=np.float32)
    for start in range(0, n_pad, tile):
        tp = pos[start : start + tile]
        tm = m[start : start + tile]
        d = tp[None, :, :] - pos[:, None, :]  # float32
        r2 = (d * d).sum(axis=2, dtype=np.float32) + eps2
        inv = np.float32(1.0) / np.sqrt(r2, dtype=np.float32)
        w = tm[None, :] * (inv * inv * inv)
        acc += (d * w[:, :, None]).sum(axis=1, dtype=np.float32)
    force = acc * (np.float32(g) * m[:, None])
    return force[: system.n].astype(np.float64)


def accelerations(
    system: ParticleSystem, g: float = 1.0, eps: float = 1e-2, **kw
) -> np.ndarray:
    """Accelerations a_i = F_i / m_i (what integrators consume).

    Zero-mass (padding) particles get zero acceleration rather than 0/0.
    """
    f = direct_forces(system, g=g, eps=eps, **kw)
    m = system.mass.astype(np.float64)
    safe = np.where(m > 0, m, 1.0)
    return np.where(m[:, None] > 0, f / safe[:, None], 0.0)

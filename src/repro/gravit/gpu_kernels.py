"""CUDA kernels of the paper, written in the simulator's kernel IR.

Four kernels:

* :func:`build_force_kernel` — the O(n²) far-field force kernel of
  Sec. IV, parameterized by memory layout.  Structure follows the paper's
  S/B/P decomposition:

  - **S** (thread setup): compute the global index, load *this* thread's
    position+mass through the layout's read plan, zero the accumulators;
  - **B** (block data fetch): each outer-loop iteration loads one
    K-particle slice through the layout into shared memory (one float4
    per thread), with barriers around it;
  - **P** (inner loop): K iterations of the ~20-instruction interaction
    body — shared float4 read, softened inverse-cube law, three MAD
    accumulations — carrying the loop bookkeeping the unroller removes.

  The inner loop carries an ``unroll`` pragma so
  :func:`repro.cudasim.launch.compile_kernel` can sweep factors, and the
  softening term is written the naive way (``eps`` held in a register,
  ``eps·eps`` recomputed every iteration) so invariant code motion has
  exactly the register-pressure effect the paper reports (18 → 17 via
  full unroll freeing the iterator, → 16 via ICM).

* :func:`build_force_kernel_notile` — the ablation variant whose inner
  loop reads global memory directly (no shared-memory staging).

* :func:`build_integrate_kernel` — the per-particle update kernel that
  touches the velocity group (the other half of the access-frequency
  grouping argument).

* :func:`build_membench_kernel` — the Sec. III microbenchmark: clock(),
  one full record read through the layout with a dependent-use sum
  forcing load serialization, clock(), store the deltas.

Both kernels take one base-pointer parameter per layout load step
(``pb0``, ``pb1``, …): the host passes ``buffer_base + step.base``, and
the kernel's address math is ``pbK + stride·index`` — a single IMAD, so
layouts differ *only* in their memory behaviour, never in ALU cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.layouts import LoadStep, MemoryLayout
from ..cudasim.ir import Kernel, KernelBuilder
from ..cudasim.isa import Reg

__all__ = [
    "POSMASS_FIELDS",
    "ALL_FIELDS",
    "KernelPlan",
    "build_force_kernel",
    "build_force_kernel_notile",
    "build_force_kernel_ooc",
    "build_integrate_kernel",
    "build_membench_kernel",
    "step_param_names",
    "column_param_names",
]

#: Fields the force kernel needs — the access-frequency group of Sec. IV.
POSMASS_FIELDS = ("px", "py", "pz", "mass")

#: Fields the microbenchmark reads (the whole structure).
ALL_FIELDS = ("px", "py", "pz", "vx", "vy", "vz", "mass")

#: Bytes per shared-memory tile entry (one float4 posmass record).
TILE_ENTRY_BYTES = 16


@dataclass(frozen=True)
class KernelPlan:
    """What the host must pass for a kernel built against a layout plan.

    ``param_for_step[k]`` names the kernel parameter that must receive
    ``buffer_base + steps[k].base`` at launch time.
    """

    steps: tuple[LoadStep, ...]
    param_for_step: tuple[str, ...]

    @property
    def loads_per_record(self) -> int:
        return len(self.steps)

    @property
    def elements_per_record(self) -> int:
        return sum(s.vector.lanes for s in self.steps)


def step_param_names(steps: tuple[LoadStep, ...]) -> tuple[str, ...]:
    return tuple(f"pb{k}" for k in range(len(steps)))


def _load_record(
    b: KernelBuilder,
    steps: tuple[LoadStep, ...],
    index_reg: Reg,
    wanted: tuple[str, ...],
    prefix: str,
    via_texture: bool = False,
    param_prefix: str = "pb",
) -> dict[str, Reg]:
    """Emit the layout's loads for record ``index_reg``; return the
    registers holding each wanted field.  ``via_texture`` routes the
    fetches through the read-only texture path (tex1Dfetch-style);
    ``param_prefix`` selects which base-pointer parameter family the
    addresses build on (``pb*`` resident buffers, ``cb*`` staging
    slots for the out-of-core column tiles)."""
    out: dict[str, Reg] = {}
    emit = b.ld_tex if via_texture else b.ld_global
    for k, step in enumerate(steps):
        addr = b.tmp(f"{prefix}a")
        b.imad(addr, index_reg, step.stride, b.param(f"{param_prefix}{k}"),
               comment=f"addr of step {k}")
        lanes = [b.tmp(f"{prefix}q") for _ in range(step.vector.lanes)]
        emit(tuple(lanes), addr, comment=f"layout step {k}")
        for lane, fname in enumerate(step.fields):
            if fname in wanted:
                out[fname] = lanes[lane]
    missing = set(wanted) - set(out)
    if missing:
        raise ValueError(
            f"layout plan does not cover fields {sorted(missing)}"
        )
    return out


def _emit_slice_sweep(
    b: KernelBuilder,
    steps: tuple[LoadStep, ...],
    block_size: int,
    unroll,
    px: Reg,
    py: Reg,
    pz: Reg,
    soft: Reg,
    fx: Reg,
    fy: Reg,
    fz: Reg,
    column_param_prefix: str = "pb",
) -> None:
    """The force kernel's shared-memory slice sweep (B + P phases).

    Emits the outer loop over ``nslices`` column slices — fetch one
    K-particle slice through the layout into shared memory, barrier,
    run the ~20-instruction interaction body against it, barrier — the
    identical instruction sequence for the in-core and out-of-core
    builders.  ``column_param_prefix`` picks the base-pointer family
    the slice fetch addresses (``pb*`` when columns live in the main
    population buffer, ``cb*`` when they live in a staging slot)."""
    with b.loop(0, b.param("nslices"), var=b.reg("s")) as s:
        # B: fetch this block's slice into shared memory.
        jg = b.tmp("jg")
        b.imad(jg, s, block_size, b.sreg("tid"), comment="slice particle")
        theirs = _load_record(
            b, steps, jg, POSMASS_FIELDS, "sl",
            param_prefix=column_param_prefix,
        )
        st_addr = b.tmp("st")
        b.shl(st_addr, b.sreg("tid"), 4, comment="my tile slot")
        b.st_shared(
            st_addr,
            (theirs["px"], theirs["py"], theirs["pz"], theirs["mass"]),
            comment="tile posmass",
        )
        b.bar_sync()
        saddr = b.reg("saddr")
        b.mov(saddr, 0, comment="tile cursor")
        # P: the interaction loop (the paper's ~20-instruction body).
        with b.loop(0, block_size, var=b.reg("j"), unroll=unroll):
            jx, jy, jz, jm = (b.tmp("jx"), b.tmp("jy"), b.tmp("jz"), b.tmp("jm"))
            b.ld_shared((jx, jy, jz, jm), saddr, comment="tile particle")
            e = b.tmp("e")
            b.mul(e, soft, soft, comment="eps^2 (invariant, naively in-loop)")
            dx, dy, dz = b.tmp("dx"), b.tmp("dy"), b.tmp("dz")
            b.sub(dx, jx, px)
            b.sub(dy, jy, py)
            b.sub(dz, jz, pz)
            t = b.tmp("t")
            b.mul(t, dx, dx)
            b.mad(t, dy, dy, t)
            b.mad(t, dz, dz, t)
            b.add(t, t, e, comment="softened r^2")
            inv = b.tmp("inv")
            b.rsqrt(inv, t)
            w = b.tmp("w")
            b.mul(w, jm, inv)
            b.mul(w, w, inv)
            b.mul(w, w, inv, comment="m_j / r^3")
            b.mad(fx, dx, w, fx)
            b.mad(fy, dy, w, fy)
            b.mad(fz, dz, w, fz)
            b.iadd(saddr, saddr, TILE_ENTRY_BYTES, comment="tile cursor++")
        b.bar_sync()


def build_force_kernel(
    layout: MemoryLayout,
    block_size: int = 128,
    unroll=None,
    name: str | None = None,
    row_offset: bool = False,
) -> tuple[Kernel, KernelPlan]:
    """The far-field force kernel for ``layout`` (paper Sec. IV).

    Grid/launch contract: particle count padded to a multiple of
    ``block_size`` (zero-mass padding), one thread per particle,
    ``nslices = n_pad / block_size`` passed as a parameter.  Output is an
    array of 16-byte records ``(fx, fy, fz, 0)`` at ``out + 16·i`` where
    ``F_i = m_i · Σ_j m_j d / (|d|² + ε²)^{3/2}`` (G applied host-side).

    ``row_offset=True`` builds the multi-device row-block variant: an
    extra ``row0`` parameter is added to the thread's global index, so a
    device launched with a *partial* grid computes rows
    ``[row0, row0 + grid·block)`` of the full interaction matrix while
    still sweeping all ``nslices`` column slices.  The offset is a single
    integer add on the index — the per-row floating-point instruction
    sequence is unchanged, which is what keeps sharded results
    bit-identical to a single-device run.
    """
    if block_size % 32:
        raise ValueError("block size must be a multiple of the warp size")
    steps = layout.read_plan(POSMASS_FIELDS)
    params = (*step_param_names(steps), "out", "nslices", "eps")
    if row_offset:
        params = (*params, "row0")
    b = KernelBuilder(
        name
        or f"gravit_forces_{layout.kind}_b{block_size}"
        + ("_rows" if row_offset else ""),
        params=params,
    )

    # ---- S: thread setup -------------------------------------------------
    i = b.reg("i")
    b.imad(i, b.sreg("ctaid"), b.sreg("ntid"), b.sreg("tid"),
           comment="global particle index")
    if row_offset:
        b.iadd(i, i, b.param("row0"), comment="row-block offset")
    mine = _load_record(b, steps, i, POSMASS_FIELDS, "my")
    px, py, pz = b.reg("px_i"), b.reg("py_i"), b.reg("pz_i")
    m_i = b.reg("m_i")
    b.mov(px, mine["px"])
    b.mov(py, mine["py"])
    b.mov(pz, mine["pz"])
    b.mov(m_i, mine["mass"])
    fx, fy, fz = b.reg("fx"), b.reg("fy"), b.reg("fz")
    b.mov(fx, 0.0)
    b.mov(fy, 0.0)
    b.mov(fz, 0.0)
    # The naive kernel keeps the softening length in a register, the way
    # "float soft = eps;" compiles — the ICM pass later eliminates it
    # together with the per-iteration square (the paper's freed register).
    soft = b.reg("soft")
    b.mov(soft, b.param("eps"), comment="softening length (naive residency)")

    tile_words = block_size * TILE_ENTRY_BYTES // 4
    b.alloc_shared(tile_words)

    # ---- outer loop over slices -------------------------------------------
    _emit_slice_sweep(
        b, steps, block_size, unroll, px, py, pz, soft, fx, fy, fz
    )

    # ---- epilogue: F = m_i * acc, store ------------------------------------
    b.mul(fx, fx, m_i)
    b.mul(fy, fy, m_i)
    b.mul(fz, fz, m_i)
    oaddr = b.tmp("oaddr")
    b.imad(oaddr, i, 16, b.param("out"))
    zero = b.tmp("z")
    b.mov(zero, 0.0)
    b.st_global(oaddr, (fx, fy, fz, zero), comment="force record")
    kernel = b.build()
    return kernel, KernelPlan(steps=steps, param_for_step=step_param_names(steps))


def column_param_names(steps: tuple[LoadStep, ...]) -> tuple[str, ...]:
    """Parameter names for the out-of-core column-tile base pointers."""
    return tuple(f"cb{k}" for k in range(len(steps)))


def build_force_kernel_ooc(
    layout: MemoryLayout,
    block_size: int = 128,
    first: bool = True,
    last: bool = True,
    unroll=None,
    name: str | None = None,
) -> tuple[Kernel, KernelPlan]:
    """The out-of-core force kernel: rows resident, columns streamed.

    Generalizes the PR 5 ``row_offset`` integer-index trick one step
    further: instead of offsetting indices into one full-population
    buffer, the thread's own record and the swept column slices live in
    *different* buffers.  ``pb*`` base pointers address the resident row
    tile (local row index, compacted per
    :meth:`~repro.cudasim.xfer.TilePlan.step_offsets`); a second ``cb*``
    family addresses the staging slot holding the current column tile,
    of which ``nslices`` K-particle slices are swept.  Because every
    layout's stride is n-independent, the emitted instruction sequence —
    in particular the interaction body — is byte-for-byte the in-core
    kernel's; only the base-pointer parameters differ, which is what
    keeps streamed results bit-identical.

    A full force evaluation chains one launch per column tile, in
    column order, accumulating through the ``out`` buffer:

    * ``first=True`` (column tile 0) zeroes the accumulators with the
      in-core kernel's ``mov 0.0``; later launches reload the partial
      sums from ``out + 16·i``.  The reload is bit-exact: every ``mad``
      result is already rounded to float32, so the f32 store/load
      round-trip reproduces the register value.
    * ``last=True`` (final column tile) applies the ``F = m_i · acc``
      scaling exactly once, matching the in-core epilogue.

    With a single column tile (``first and last``) the emitted kernel is
    the in-core kernel under different parameter names.
    """
    if block_size % 32:
        raise ValueError("block size must be a multiple of the warp size")
    steps = layout.read_plan(POSMASS_FIELDS)
    params = (
        *step_param_names(steps),
        *column_param_names(steps),
        "out",
        "nslices",
        "eps",
    )
    b = KernelBuilder(
        name
        or f"gravit_forces_ooc_{layout.kind}_b{block_size}"
        + ("_f" if first else "")
        + ("_l" if last else ""),
        params=params,
    )

    # ---- S: thread setup (local row index into the resident tile) --------
    i = b.reg("i")
    b.imad(i, b.sreg("ctaid"), b.sreg("ntid"), b.sreg("tid"),
           comment="local row index")
    mine = _load_record(b, steps, i, POSMASS_FIELDS, "my")
    px, py, pz = b.reg("px_i"), b.reg("py_i"), b.reg("pz_i")
    m_i = b.reg("m_i")
    b.mov(px, mine["px"])
    b.mov(py, mine["py"])
    b.mov(pz, mine["pz"])
    b.mov(m_i, mine["mass"])
    oaddr = b.reg("oaddr")
    b.imad(oaddr, i, 16, b.param("out"), comment="accumulator record")
    fx, fy, fz = b.reg("fx"), b.reg("fy"), b.reg("fz")
    if first:
        b.mov(fx, 0.0)
        b.mov(fy, 0.0)
        b.mov(fz, 0.0)
    else:
        fpad = b.tmp("fp")
        b.ld_global((fx, fy, fz, fpad), oaddr,
                    comment="partial accumulators from earlier column tiles")
    soft = b.reg("soft")
    b.mov(soft, b.param("eps"), comment="softening length (naive residency)")

    tile_words = block_size * TILE_ENTRY_BYTES // 4
    b.alloc_shared(tile_words)

    # ---- outer loop over the column tile's slices -------------------------
    _emit_slice_sweep(
        b, steps, block_size, unroll, px, py, pz, soft, fx, fy, fz,
        column_param_prefix="cb",
    )

    # ---- epilogue: scale on the last column tile only ---------------------
    if last:
        b.mul(fx, fx, m_i)
        b.mul(fy, fy, m_i)
        b.mul(fz, fz, m_i)
    zero = b.tmp("z")
    b.mov(zero, 0.0)
    b.st_global(oaddr, (fx, fy, fz, zero), comment="force record")
    kernel = b.build()
    return kernel, KernelPlan(steps=steps, param_for_step=step_param_names(steps))


def build_force_kernel_notile(
    layout: MemoryLayout,
    block_size: int = 128,
    name: str | None = None,
    via_texture: bool = False,
) -> tuple[Kernel, KernelPlan]:
    """Ablation: the force kernel *without* shared-memory tiling.

    The inner loop reads particle ``j`` straight from global memory every
    iteration.  All threads of a warp request the *same* record — which
    on CC 1.x is **not** a coalescible pattern (thread k must access
    element k), so every iteration degenerates to per-thread transactions
    *and* exposes the full DRAM latency inside the dependency chain.

    This is the design choice DESIGN.md calls out: the paper's kernel
    (like the GPU Gems 3 implementation it cites) stages a K-particle
    slice in shared memory precisely to avoid this.  The ablation
    experiment quantifies the cost of skipping it.

    ``via_texture`` reads the inner-loop particle through the texture
    cache instead — the era's other mitigation (the warp's same-address
    fetch hits the cache after the first line fill), sitting between the
    raw-global and shared-tiled variants.
    """
    if block_size % 32:
        raise ValueError("block size must be a multiple of the warp size")
    steps = layout.read_plan(POSMASS_FIELDS)
    params = (*step_param_names(steps), "out", "n", "eps")
    b = KernelBuilder(
        name
        or f"gravit_forces_notile{'_tex' if via_texture else ''}_{layout.kind}",
        params=params,
    )

    i = b.reg("i")
    b.imad(i, b.sreg("ctaid"), b.sreg("ntid"), b.sreg("tid"))
    mine = _load_record(b, steps, i, POSMASS_FIELDS, "my")
    px, py, pz, m_i = (b.reg("px_i"), b.reg("py_i"), b.reg("pz_i"),
                       b.reg("m_i"))
    b.mov(px, mine["px"])
    b.mov(py, mine["py"])
    b.mov(pz, mine["pz"])
    b.mov(m_i, mine["mass"])
    fx, fy, fz = b.reg("fx"), b.reg("fy"), b.reg("fz")
    b.mov(fx, 0.0)
    b.mov(fy, 0.0)
    b.mov(fz, 0.0)
    soft = b.reg("soft")
    b.mov(soft, b.param("eps"))

    with b.loop(0, b.param("n"), var=b.reg("j")) as j:
        theirs = _load_record(
            b, steps, j, POSMASS_FIELDS, "g", via_texture=via_texture
        )
        e = b.tmp("e")
        b.mul(e, soft, soft)
        dx, dy, dz = b.tmp("dx"), b.tmp("dy"), b.tmp("dz")
        b.sub(dx, theirs["px"], px)
        b.sub(dy, theirs["py"], py)
        b.sub(dz, theirs["pz"], pz)
        t = b.tmp("t")
        b.mul(t, dx, dx)
        b.mad(t, dy, dy, t)
        b.mad(t, dz, dz, t)
        b.add(t, t, e)
        inv = b.tmp("inv")
        b.rsqrt(inv, t)
        w = b.tmp("w")
        b.mul(w, theirs["mass"], inv)
        b.mul(w, w, inv)
        b.mul(w, w, inv)
        b.mad(fx, dx, w, fx)
        b.mad(fy, dy, w, fy)
        b.mad(fz, dz, w, fz)

    b.mul(fx, fx, m_i)
    b.mul(fy, fy, m_i)
    b.mul(fz, fz, m_i)
    oaddr = b.tmp("oaddr")
    b.imad(oaddr, i, 16, b.param("out"))
    zero = b.tmp("z")
    b.mov(zero, 0.0)
    b.st_global(oaddr, (fx, fy, fz, zero))
    kernel = b.build()
    return kernel, KernelPlan(steps=steps, param_for_step=step_param_names(steps))


def build_integrate_kernel(
    layout: MemoryLayout,
    block_size: int = 128,
    name: str | None = None,
    row_offset: bool = False,
) -> tuple[Kernel, KernelPlan]:
    """The per-particle update kernel: semi-implicit Euler on the device.

    This is the *other* half of the paper's access-frequency argument:
    the force kernel touches only the posmass group every inner-loop
    iteration, while the velocities live in their own array and are read
    and written exactly once per step — by this kernel.

    Per thread: load the full record through the layout, load the force
    record ``(fx, fy, fz, _)`` written by the force kernel, apply

        v += (F / m) · kick_dt;   p += v · drift_dt

    (zero-mass padding particles get zero acceleration), and store the
    record back through the layout's steps.  The split ``kick_dt`` /
    ``drift_dt`` parameters let the host compose either semi-implicit
    Euler (kick = drift = dt) or kick-drift-kick leapfrog (two dt/2
    kicks around one dt drift) from the same kernel.

    ``row_offset=True`` is the multi-device row-block variant (see
    :func:`build_force_kernel`): a ``row0`` parameter shifts the global
    index so a partial grid updates only this device's particle rows.
    """
    if block_size % 32:
        raise ValueError("block size must be a multiple of the warp size")
    steps = layout.read_plan(ALL_FIELDS)
    params = (*step_param_names(steps), "forces", "kick_dt", "drift_dt")
    if row_offset:
        params = (*params, "row0")
    b = KernelBuilder(
        name
        or f"gravit_integrate_{layout.kind}"
        + ("_rows" if row_offset else ""),
        params=params,
    )

    i = b.reg("i")
    b.imad(i, b.sreg("ctaid"), b.sreg("ntid"), b.sreg("tid"))
    if row_offset:
        b.iadd(i, i, b.param("row0"), comment="row-block offset")
    # Load the whole record; remember per-step address and lane registers
    # so the store below reuses them (pad lanes round-trip untouched).
    step_addrs: list[Reg] = []
    step_lanes: list[list[Reg]] = []
    regs: dict[str, Reg] = {}
    for k, step in enumerate(steps):
        addr = b.reg(f"sa{k}")
        b.imad(addr, i, step.stride, b.param(f"pb{k}"))
        lanes = [b.tmp(f"q{k}_") for _ in range(step.vector.lanes)]
        b.ld_global(tuple(lanes), addr)
        step_addrs.append(addr)
        step_lanes.append(lanes)
        for lane, fname in enumerate(step.fields):
            if fname is not None:
                regs[fname] = lanes[lane]

    faddr = b.tmp("fa")
    b.imad(faddr, i, 16, b.param("forces"))
    fx, fy, fz, fpad = b.tmp("fx"), b.tmp("fy"), b.tmp("fz"), b.tmp("fp")
    b.ld_global((fx, fy, fz, fpad), faddr)

    # acceleration = F/m, with the zero-mass (padding) guard: divide by a
    # safe mass, then zero the result where the mass was zero.
    nonzero = b.pred("m")
    b.setp("gt", nonzero, regs["mass"], 0.0)
    m_safe = b.tmp("msafe")
    b.selp(m_safe, regs["mass"], 1.0, nonzero)
    adt = b.tmp("adt")
    b.div(adt, b.param("kick_dt"), m_safe, comment="kick_dt / m")
    b.selp(adt, adt, 0.0, nonzero)

    for f_reg, v_name in ((fx, "vx"), (fy, "vy"), (fz, "vz")):
        b.mad(regs[v_name], f_reg, adt, regs[v_name])
    for v_name, p_name in (("vx", "px"), ("vy", "py"), ("vz", "pz")):
        b.mad(regs[p_name], regs[v_name], b.param("drift_dt"), regs[p_name])

    for addr, lanes in zip(step_addrs, step_lanes):
        b.st_global(addr, tuple(lanes))
    kernel = b.build()
    return kernel, KernelPlan(steps=steps, param_for_step=step_param_names(steps))


def build_membench_kernel(
    layout: MemoryLayout,
    name: str | None = None,
    records_per_thread: int = 1,
) -> tuple[Kernel, KernelPlan]:
    """The Sec. III memory microbenchmark for ``layout``.

    Protocol exactly as the paper describes: set up, read ``clock()``,
    load one full record through the layout, *use* every loaded element
    (a dependent sum, preventing both dead-code elimination and load
    overlap), read ``clock()`` again, store the difference (and the sum,
    keeping it observable) to ``out + 8·i``.

    ``records_per_thread > 1`` repeats the read for consecutive records
    (amortizing the clock overhead), dividing the reported delta.
    """
    if records_per_thread < 1:
        raise ValueError("records_per_thread must be >= 1")
    steps = layout.read_plan(ALL_FIELDS)
    params = (*step_param_names(steps), "out")
    b = KernelBuilder(name or f"membench_{layout.kind}", params=params)

    i = b.reg("i")
    b.imad(i, b.sreg("ctaid"), b.sreg("ntid"), b.sreg("tid"))
    total = b.reg("sum")
    b.mov(total, 0.0)
    c0 = b.reg("c0")
    b.clock(c0)
    rec = b.reg("rec")
    b.mov(rec, i)
    for r in range(records_per_thread):
        # Load and use step by step: summing a step's lanes *before* the
        # next load means the in-order warp cannot overlap the loads'
        # latencies — the serialization the paper's protocol enforces by
        # "add[ing] instructions that use the loaded values".
        for k, step in enumerate(steps):
            addr = b.tmp(f"r{r}a")
            b.imad(addr, rec, step.stride, b.param(f"pb{k}"))
            lanes = [b.tmp(f"r{r}q") for _ in range(step.vector.lanes)]
            b.ld_global(tuple(lanes), addr, comment=f"layout step {k}")
            for lane in lanes:
                b.add(total, total, lane)
        if r + 1 < records_per_thread:
            b.iadd(rec, rec, b.sreg("ntid"), comment="next record")
    c1 = b.reg("c1")
    b.clock(c1)
    diff = b.reg("diff")
    b.isub(diff, c1, c0)
    fdiff = b.reg("fdiff")
    b.i2f(fdiff, diff)
    oaddr = b.tmp("oaddr")
    b.imad(oaddr, i, 8, b.param("out"))
    b.st_global(oaddr, (fdiff, total), comment="cycles, checksum")
    kernel = b.build()
    return kernel, KernelPlan(steps=steps, param_for_step=step_param_names(steps))

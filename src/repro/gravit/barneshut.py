"""Barnes-Hut far-field forces: recursive and iterative traversals.

The O(n log n) algorithm Gravit uses on the CPU (paper Sec. I-C).  A cell
whose angular size ``2·half / distance`` is below the opening angle θ is
treated as a point mass at its center of mass; otherwise it is opened.

Two traversals are provided:

* :func:`barnes_hut_forces` — the natural recursive form;
* :func:`barnes_hut_forces_iterative` — an explicit-stack version, i.e.
  the "recursion transformed into an iterative equivalent" that the paper
  notes a CUDA port would require (kernels cannot recurse on CC 1.x).
  The test suite asserts the two produce identical results.

Both return forces (like :mod:`repro.gravit.forces_cpu`) in float64.
"""

from __future__ import annotations

import numpy as np

from .forces_cpu import direct_forces
from .octree import Octree, build_octree
from .particles import ParticleSystem

__all__ = [
    "barnes_hut_forces",
    "barnes_hut_forces_iterative",
    "bh_accuracy",
]


def _leaf_contribution(
    tree: Octree,
    node: int,
    target: np.ndarray,
    self_index: int,
    pos: np.ndarray,
    mass: np.ndarray,
    eps2: float,
) -> np.ndarray:
    idx = tree.leaf_particles(node)
    if self_index >= 0:
        idx = idx[idx != self_index]
    if idx.size == 0:
        return np.zeros(3)
    d = pos[idx] - target
    r2 = (d * d).sum(axis=1) + eps2
    w = mass[idx] * r2 ** -1.5
    return (d * w[:, None]).sum(axis=0)


def _cell_contribution(
    tree: Octree, node: int, target: np.ndarray, eps2: float
) -> np.ndarray:
    d = tree.com[node] - target
    r2 = float((d * d).sum()) + eps2
    return d * (tree.mass[node] * r2 ** -1.5)


def barnes_hut_forces(
    system: ParticleSystem,
    g: float = 1.0,
    eps: float = 1e-2,
    theta: float = 0.5,
    tree: Octree | None = None,
) -> np.ndarray:
    """Recursive Barnes-Hut force evaluation."""
    if theta < 0:
        raise ValueError("opening angle must be non-negative")
    tree = tree or build_octree(system)
    pos = system.positions.astype(np.float64)
    mass = system.mass.astype(np.float64)
    eps2 = eps * eps
    out = np.zeros((system.n, 3))

    def walk(node: int, i: int, target: np.ndarray) -> np.ndarray:
        if tree.count[node] == 0:
            return np.zeros(3)
        if tree.is_leaf(node):
            return _leaf_contribution(tree, node, target, i, pos, mass, eps2)
        d = tree.com[node] - target
        dist = float(np.sqrt((d * d).sum()))
        if dist > 0 and (2.0 * tree.half[node]) / dist < theta:
            return _cell_contribution(tree, node, target, eps2)
        first = int(tree.first_child[node])
        acc = np.zeros(3)
        for o in range(8):
            acc += walk(first + o, i, target)
        return acc

    for i in range(system.n):
        out[i] = walk(0, i, pos[i])
    return out * (g * mass[:, None])


def barnes_hut_forces_iterative(
    system: ParticleSystem,
    g: float = 1.0,
    eps: float = 1e-2,
    theta: float = 0.5,
    tree: Octree | None = None,
    count_visits: bool = False,
):
    """Explicit-stack Barnes-Hut (the GPU-portable control structure).

    With ``count_visits`` returns ``(forces, visits)`` where ``visits``
    is the per-particle count of tree nodes examined — the deterministic
    work metric the θ-tradeoff experiment reports instead of wall time.
    """
    if theta < 0:
        raise ValueError("opening angle must be non-negative")
    tree = tree or build_octree(system)
    pos = system.positions.astype(np.float64)
    mass = system.mass.astype(np.float64)
    eps2 = eps * eps
    out = np.zeros((system.n, 3))
    visits = np.zeros(system.n, dtype=np.int64)

    for i in range(system.n):
        target = pos[i]
        acc = np.zeros(3)
        stack = [0]
        examined = 0
        while stack:
            node = stack.pop()
            examined += 1
            if tree.count[node] == 0:
                continue
            if tree.is_leaf(node):
                acc += _leaf_contribution(
                    tree, node, target, i, pos, mass, eps2
                )
                continue
            d = tree.com[node] - target
            dist = float(np.sqrt((d * d).sum()))
            if dist > 0 and (2.0 * tree.half[node]) / dist < theta:
                acc += _cell_contribution(tree, node, target, eps2)
            else:
                first = int(tree.first_child[node])
                stack.extend(range(first, first + 8))
        out[i] = acc
        visits[i] = examined
    forces = out * (g * mass[:, None])
    if count_visits:
        return forces, visits
    return forces


def bh_accuracy(
    system: ParticleSystem,
    theta: float,
    g: float = 1.0,
    eps: float = 1e-2,
) -> float:
    """RMS relative force error of Barnes-Hut vs the direct O(n²) sum."""
    exact = direct_forces(system, g=g, eps=eps)
    approx = barnes_hut_forces(system, g=g, eps=eps, theta=theta)
    norm = np.linalg.norm(exact, axis=1)
    err = np.linalg.norm(approx - exact, axis=1)
    scale = np.where(norm > 0, norm, 1.0)
    return float(np.sqrt(np.mean((err / scale) ** 2)))

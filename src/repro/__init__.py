"""repro — reproduction of Siegel, Ributzka & Li, *CUDA Memory
Optimizations for Large Data-Structures in the Gravit Simulator*
(ICPP Workshops 2009), on a cycle-level SIMT GPU simulator.

Subpackages
-----------
``repro.core``
    The paper's contribution: memory-layout optimization for large
    structures (AoS/SoA/AoaS/SoAoaS), coalescing analysis per CUDA
    revision, access-cost model, loop-unrolling speedup model.
``repro.cudasim``
    The substrate: a G80-class SIMT simulator with kernel IR, optimizing
    compiler passes, warp scheduler, memory pipeline, occupancy.
``repro.gravit``
    The application: the Gravit n-body simulator — particle system,
    initial conditions, CPU forces (direct + Barnes-Hut), GPU kernels at
    every optimization level, integrators.
``repro.experiments``
    Harness regenerating every figure/table of the paper's evaluation.
``repro.telemetry``
    Observability: metrics registry, span tracing, Chrome-trace timeline
    export, and structured run manifests.
"""

from ._version import __version__

# NOTE: repro.cudasim must be imported before repro.core.  The core layer
# only imports cudasim *submodules* (dtypes/device), which is safe while
# the cudasim package initializes; importing core first would re-enter
# core's own __init__ through cudasim.launch and fail.
from .cudasim import (
    Device,
    G8800GTX,
    KernelBuilder,
    Toolchain,
    compile_kernel,
    occupancy,
)
from .core import (
    AoaSLayout,
    AoSLayout,
    Field,
    MemoryLayout,
    SoALayout,
    SoAoaSLayout,
    StructDecl,
    make_layout,
    particle_struct,
)
from . import telemetry

__all__ = [
    "__version__",
    "telemetry",
    "Field",
    "StructDecl",
    "MemoryLayout",
    "AoSLayout",
    "SoALayout",
    "AoaSLayout",
    "SoAoaSLayout",
    "make_layout",
    "particle_struct",
    "Device",
    "G8800GTX",
    "KernelBuilder",
    "Toolchain",
    "compile_kernel",
    "occupancy",
]

"""Structure declarations with CUDA alignment semantics.

The paper's subject is a 28-byte particle record::

    typedef struct particles {
        float px, py, pz;
        float vx, vy, vz;
        float mass;
    } particle_t;

and what happens to its memory traffic under different layouts.  This module
models the *declaration* side: fields, offsets, the ``__align__(N)``
attribute, and the hidden padding CUDA inserts (Sec. II-C: aligning the
7-float structure to 16 bytes adds an eighth hidden 32-bit element).

A :class:`StructDecl` computes offsets exactly like nvcc for plain 4-byte
scalar fields: consecutive, each aligned to 4 bytes; the struct size is
rounded up to the declared alignment.  :func:`split_for_alignment`
implements step 2 of the paper's Sec. IV procedure — splitting a structure
that exceeds the 128-bit boundary into 64/128-bit alignable pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Iterable, Iterator, Sequence

from ..cudasim.dtypes import F32, DType

__all__ = [
    "Field",
    "StructDecl",
    "PARTICLE_FIELDS",
    "particle_struct",
    "split_for_alignment",
    "group_by_frequency",
]

#: Alignments CUDA's ``__align__`` accepts for memory-access vectorization.
_VALID_ALIGNMENTS = (None, 4, 8, 16)

#: Name used for hidden padding slots (mirrors the paper's "hidden 32 bit
#: padding element").
PAD_NAME = "__pad"


@dataclass(frozen=True)
class Field:
    """One named scalar member of a structure.

    ``frequency`` is a relative access-frequency tag used by the paper's
    grouping rule ("group data in portions with similar access
    frequencies"): in Gravit, positions and mass are read every inner-loop
    iteration while velocities are read once per particle update.
    """

    name: str
    dtype: DType = F32
    frequency: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or self.name.startswith(" "):
            raise ValueError(f"invalid field name {self.name!r}")
        if self.dtype.nbytes != 4:
            raise ValueError(
                f"field {self.name!r}: only 4-byte scalar fields are "
                f"supported (CUDA 1.x register width)"
            )

    @property
    def nbytes(self) -> int:
        return self.dtype.nbytes

    @property
    def is_padding(self) -> bool:
        return self.name.startswith(PAD_NAME)


def _pad_field(index: int) -> Field:
    return Field(f"{PAD_NAME}{index}", F32, frequency=0.0)


@dataclass(frozen=True)
class StructDecl:
    """A C-style structure of 4-byte scalar fields with optional alignment.

    Parameters
    ----------
    name:
        Struct tag, used in diagnostics and kernel symbol names.
    fields:
        Ordered member fields (padding members are appended automatically
        when ``align`` requires them; do not declare them yourself).
    align:
        ``None`` for natural (4-byte) alignment, or 8/16 for
        ``__align__(8)`` / ``__align__(16)``, which both pads the struct
        size and permits vectorized 8/16-byte loads.
    """

    name: str
    fields: tuple[Field, ...]
    align: int | None = None
    _padded: tuple[Field, ...] = dc_field(init=False, repr=False, default=())

    def __init__(
        self,
        name: str,
        fields: Sequence[Field] | Iterable[Field],
        align: int | None = None,
    ) -> None:
        fields = tuple(fields)
        if not fields:
            raise ValueError("a struct needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in struct {name!r}")
        if align not in _VALID_ALIGNMENTS:
            raise ValueError(
                f"align must be one of {_VALID_ALIGNMENTS}, got {align!r}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "fields", fields)
        object.__setattr__(self, "align", align)
        object.__setattr__(self, "_padded", self._compute_padded())

    # -- layout math ------------------------------------------------------

    def _compute_padded(self) -> tuple[Field, ...]:
        """Fields plus hidden padding to reach the declared alignment."""
        members = list(self.fields)
        if self.align:
            natural = 4 * len(members)
            padded = -(-natural // self.align) * self.align
            for i in range((padded - natural) // 4):
                members.append(_pad_field(i))
        return tuple(members)

    @property
    def padded_fields(self) -> tuple[Field, ...]:
        """All members including hidden padding elements."""
        return self._padded

    @property
    def natural_size(self) -> int:
        """Size without alignment padding (sizeof the packed struct)."""
        return 4 * len(self.fields)

    @property
    def size(self) -> int:
        """sizeof() including alignment padding."""
        return 4 * len(self.padded_fields)

    @property
    def alignment(self) -> int:
        """Effective alignment requirement in bytes."""
        return self.align or 4

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def offset_of(self, field_name: str) -> int:
        """Byte offset of a member within one struct instance."""
        for i, f in enumerate(self.padded_fields):
            if f.name == field_name:
                return 4 * i
        raise KeyError(f"struct {self.name!r} has no field {field_name!r}")

    def __contains__(self, field_name: str) -> bool:
        return any(f.name == field_name for f in self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    @property
    def exceeds_alignment_boundary(self) -> bool:
        """True when the struct is one of the paper's "large structures".

        A structure larger than 16 bytes cannot be fetched with a single
        64/128-bit access, which is exactly the class of structures the
        paper's SoAoaS technique targets.
        """
        return self.natural_size > 16

    def with_align(self, align: int | None) -> "StructDecl":
        return StructDecl(self.name, self.fields, align)


#: The Gravit particle record, with the access frequencies from Sec. IV:
#: positions and mass are touched in every inner-loop interaction,
#: velocities only once per integration step.
PARTICLE_FIELDS = (
    Field("px", F32, frequency=1.0),
    Field("py", F32, frequency=1.0),
    Field("pz", F32, frequency=1.0),
    Field("vx", F32, frequency=1e-3),
    Field("vy", F32, frequency=1e-3),
    Field("vz", F32, frequency=1e-3),
    Field("mass", F32, frequency=1.0),
)


def particle_struct(align: int | None = None) -> StructDecl:
    """The paper's ``particle_t`` declaration (Fig. 2 / Fig. 6)."""
    return StructDecl("particle_t", PARTICLE_FIELDS, align)


def split_for_alignment(
    struct: StructDecl, boundary: int = 16
) -> list[StructDecl]:
    """Split a large struct into alignable sub-structs (paper step 2).

    Fields are taken in declaration order and packed greedily into chunks
    of at most ``boundary`` bytes; every chunk is emitted as a struct
    aligned to the smallest power-of-two access size that covers it
    (4, 8 or 16 bytes), so each can be fetched with one vector load.
    """
    if boundary not in (8, 16):
        raise ValueError(f"boundary must be 8 or 16 bytes, got {boundary}")
    per_chunk = boundary // 4
    chunks: list[StructDecl] = []
    members = list(struct.fields)
    for start in range(0, len(members), per_chunk):
        chunk = members[start : start + per_chunk]
        natural = 4 * len(chunk)
        align = 4 if natural <= 4 else (8 if natural <= 8 else 16)
        chunks.append(
            StructDecl(f"{struct.name}_part{len(chunks)}", chunk, align)
        )
    return chunks


def group_by_frequency(
    fields: Sequence[Field], ratio_threshold: float = 10.0
) -> list[tuple[Field, ...]]:
    """Group fields whose access frequencies are within ``ratio_threshold``.

    Implements step 1 of the paper's Sec. IV procedure: "group data in
    portions with similar access frequencies".  Fields are sorted by
    descending frequency and a new group is opened whenever the frequency
    drops by more than the threshold ratio relative to the group leader.
    Declaration order is preserved inside each group so that the grouping
    never reorders semantically adjacent members (px,py,pz stay together).
    """
    if ratio_threshold <= 1.0:
        raise ValueError("ratio_threshold must exceed 1.0")
    ordered = sorted(
        enumerate(fields), key=lambda kv: (-kv[1].frequency, kv[0])
    )
    groups: list[list[tuple[int, Field]]] = []
    for idx, f in ordered:
        if groups and groups[-1][0][1].frequency <= f.frequency * ratio_threshold:
            groups[-1].append((idx, f))
        else:
            groups.append([(idx, f)])
    return [
        tuple(f for _, f in sorted(group, key=lambda kv: kv[0]))
        for group in groups
    ]

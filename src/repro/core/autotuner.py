"""Exhaustive autotuner over the paper's optimization space.

The paper tunes three axes by hand: memory layout (Sec. II), unroll
factor (Sec. IV-A), and block size (for occupancy).  The autotuner walks
the cross product and ranks configurations by an arbitrary objective
(seconds, cycles, occupancy-weighted cost, ...).

The objective is a callback so the module stays independent of the
application layer: pass ``lambda cfg: backend_for(cfg).predict_seconds(n)``
to tune the Gravit kernel (see ``examples/layout_autotune.py``), or an
analytic model for instant results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, Union

__all__ = ["TuneConfig", "TuneResult", "autotune", "default_space"]

UnrollSpec = Union[int, str, None]


@dataclass(frozen=True)
class TuneConfig:
    """One point of the search space."""

    layout_kind: str
    block_size: int
    unroll: UnrollSpec
    licm: bool

    @property
    def label(self) -> str:
        u = (
            "rolled"
            if self.unroll in (None, 1)
            else ("full" if self.unroll == "full" else f"u{self.unroll}")
        )
        return (
            f"{self.layout_kind}/b{self.block_size}/{u}"
            + ("/icm" if self.licm else "")
        )


@dataclass
class TuneResult:
    """Ranked outcome of a search."""

    ranked: list[tuple[TuneConfig, float]] = field(default_factory=list)
    failed: list[tuple[TuneConfig, str]] = field(default_factory=list)

    @property
    def best(self) -> TuneConfig:
        if not self.ranked:
            raise ValueError("no configuration succeeded")
        return self.ranked[0][0]

    @property
    def best_cost(self) -> float:
        return self.ranked[0][1]

    def speedup_over_worst(self) -> float:
        if len(self.ranked) < 2:
            return 1.0
        return self.ranked[-1][1] / self.ranked[0][1]

    def table(self, top: int | None = None) -> str:
        rows = self.ranked if top is None else self.ranked[:top]
        width = max((len(c.label) for c, _ in rows), default=8)
        lines = [f"{'configuration':<{width}}  cost"]
        for cfg, cost in rows:
            lines.append(f"{cfg.label:<{width}}  {cost:.6g}")
        for cfg, err in self.failed:
            lines.append(f"{cfg.label:<{width}}  FAILED: {err}")
        return "\n".join(lines)


def default_space(
    layouts: Sequence[str] = ("aos", "soa", "aoas", "soaoas"),
    block_sizes: Sequence[int] = (64, 128, 256),
    unrolls: Sequence[UnrollSpec] = (None, 4, "full"),
    licm: Sequence[bool] = (False, True),
) -> list[TuneConfig]:
    """The cross product the paper explores (2 × 3 × 3 × 4 points)."""
    return [
        TuneConfig(lk, bs, u, ic)
        for lk, bs, u, ic in itertools.product(
            layouts, block_sizes, unrolls, licm
        )
    ]


def autotune(
    objective: Callable[[TuneConfig], float],
    space: Iterable[TuneConfig] | None = None,
    lower_is_better: bool = True,
) -> TuneResult:
    """Evaluate ``objective`` over ``space`` and rank.

    Configurations whose objective raises are recorded in ``failed``
    (e.g. a block size whose register demand cannot launch) rather than
    aborting the search — mirroring how a practitioner sweeps CUDA
    configurations.
    """
    result = TuneResult()
    for cfg in space if space is not None else default_space():
        try:
            cost = float(objective(cfg))
        except Exception as exc:  # noqa: BLE001 - survey semantics
            result.failed.append((cfg, f"{type(exc).__name__}: {exc}"))
            continue
        result.ranked.append((cfg, cost))
    result.ranked.sort(key=lambda pair: pair[1] if lower_is_better else -pair[1])
    return result

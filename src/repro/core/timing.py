"""Memory-access cost model (latency + bandwidth queue).

Used in two places:

* analytically, by :func:`estimate_structure_read` /
  :func:`estimate_cycles_per_element` — a closed-form predictor for the
  Fig. 10 microbenchmark that needs no simulation (and is cross-checked
  against the cycle simulator in the test suite);
* inside the simulator's memory pipeline (:mod:`repro.cudasim.pipeline`),
  which charges the same per-transaction costs but resolves queueing
  dynamically.

Model: a load instruction generates transactions (via a coalescing
policy).  Each transaction occupies the SM's memory pipe for

    ``pipe_cycles = transaction_overhead + size / bytes_per_cycle``

and the data arrives ``latency`` cycles after the transaction leaves the
pipe.  Wide per-thread accesses (8/16 bytes) additionally pay a latency
factor — on the G80, 64/128-bit loads are measurably slower per element
than 32-bit loads (cf. the low per-element gain the paper reports for the
aligned layouts relative to the transaction-count reduction).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cudasim.device import DeviceProperties, MemoryTimings
from .access import warp_accesses
from .coalescing import CoalescingPolicy
from .layouts import MemoryLayout
from .transactions import MemoryTransaction

__all__ = [
    "AccessCost",
    "MemoryCostModel",
    "StructureReadEstimate",
    "estimate_structure_read",
    "estimate_cycles_per_element",
]


@dataclass(frozen=True)
class AccessCost:
    """Cycle cost of one warp-wide load/store instruction."""

    n_transactions: int
    bytes_moved: int
    issue_cycles: float  # instruction (re-)issue cost at the SM front end
    pipe_cycles: float  # memory-pipe occupancy (the bandwidth term)
    latency: float  # cycles from last transaction to data-ready

    @property
    def exposed_cycles(self) -> float:
        """Completion time when nothing overlaps (dependent-use chain)."""
        return self.issue_cycles + self.pipe_cycles + self.latency


class MemoryCostModel:
    """Charges cycles for transaction lists under a device's timings."""

    def __init__(self, device: DeviceProperties) -> None:
        self.device = device
        self.timings: MemoryTimings = device.memory

    def transaction_pipe_cycles(self, tx: MemoryTransaction) -> float:
        t = self.timings
        return t.transaction_overhead + tx.size / t.bytes_per_cycle

    def access_cost(
        self,
        policy: CoalescingPolicy,
        transactions_per_halfwarp: list[list[MemoryTransaction]],
        access_size: int,
    ) -> AccessCost:
        """Cost of one warp instruction given its per-half-warp transactions."""
        t = self.timings
        all_tx = [tx for half in transactions_per_halfwarp for tx in half]
        n_tx = len(all_tx)
        pipe = sum(self.transaction_pipe_cycles(tx) for tx in all_tx)
        # The instruction is replayed once per transaction beyond the first
        # of each half-warp (address-divergence replays) — unless the
        # toolchain merges in the driver instead of replaying in hardware.
        replays = 0
        if policy.charges_replays:
            replays = sum(
                max(0, len(half) - 1) for half in transactions_per_halfwarp
            )
        issue = self.device.alu_issue_cycles + replays * t.replay_issue_cycles
        latency = policy.load_latency(t, access_size)
        return AccessCost(
            n_transactions=n_tx,
            bytes_moved=sum(tx.size for tx in all_tx),
            issue_cycles=float(issue),
            pipe_cycles=float(pipe),
            latency=float(latency),
        )

    def warp_load_cost(
        self,
        policy: CoalescingPolicy,
        layout_step_accesses,
        access_size: int,
    ) -> AccessCost:
        txs = [policy.transactions(a) for a in layout_step_accesses]
        return self.access_cost(policy, txs, access_size)


@dataclass(frozen=True)
class StructureReadEstimate:
    """Analytic prediction for reading one full record per thread."""

    layout_kind: str
    policy_name: str
    loads: int
    elements: int
    transactions: int
    bytes_moved: int
    serialized_cycles: float  # dependent-use chain, one warp alone
    overlapped_cycles: float  # independent loads, latencies overlap
    per_element_serialized: float
    per_element_overlapped: float


def estimate_structure_read(
    layout: MemoryLayout,
    policy: CoalescingPolicy,
    device: DeviceProperties,
    fields: tuple[str, ...] | None = None,
    first_record: int = 0,
    use_latency: float | None = None,
) -> StructureReadEstimate:
    """Closed-form cost of one warp reading one record per thread.

    ``use_latency`` adds a consumer-ALU latency per element for the
    "sum up all the data" instructions of the Sec. III microbenchmark
    protocol (defaults to the device's ALU result latency).
    """
    model = MemoryCostModel(device)
    if use_latency is None:
        use_latency = float(device.alu_result_latency)
    plan = layout.read_plan(fields)
    serialized = 0.0
    issue_total = 0.0
    pipe_total = 0.0
    max_latency = 0.0
    n_tx = 0
    moved = 0
    elements = 0
    for step in plan:
        accesses = warp_accesses(step, first_record)
        cost = model.warp_load_cost(policy, accesses, step.vector.nbytes)
        serialized += cost.exposed_cycles + step.vector.lanes * use_latency
        issue_total += cost.issue_cycles + cost.pipe_cycles
        max_latency = max(max_latency, cost.latency)
        n_tx += cost.n_transactions
        moved += cost.bytes_moved
        elements += step.vector.lanes
    overlapped = issue_total + max_latency + elements * use_latency
    return StructureReadEstimate(
        layout_kind=layout.kind,
        policy_name=policy.name,
        loads=len(plan),
        elements=elements,
        transactions=n_tx,
        bytes_moved=moved,
        serialized_cycles=serialized,
        overlapped_cycles=overlapped,
        per_element_serialized=serialized / max(elements, 1),
        per_element_overlapped=overlapped / max(elements, 1),
    )


def estimate_cycles_per_element(
    layout: MemoryLayout,
    policy: CoalescingPolicy,
    device: DeviceProperties,
    fields: tuple[str, ...] | None = None,
) -> float:
    """The Fig. 10 metric, predicted analytically (serialized protocol)."""
    return estimate_structure_read(
        layout, policy, device, fields
    ).per_element_serialized

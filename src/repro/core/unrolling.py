"""Loop-unrolling cost model and guidelines (paper Sec. IV-A).

The paper's argument, parameterized:

* a rolled iteration executes ``body + bookkeeping`` instructions, where
  bookkeeping = compare + increment + jump (3) plus any induction-address
  adds the unroller can fold (1 in the Gravit kernel);
* unrolling by U amortizes the loop bookkeeping U-fold and, at full
  unroll, folds the address adds into immediates — predicted per-original-
  iteration cost ``body + folded/U' + bookkeeping/U``;
* the expected speedup is Eq. 3: the ratio of per-iteration costs;
* fully unrolling also frees the iterator register (and ICM one more),
  which matters through occupancy, not instruction count.

:func:`plan_unroll` turns the model into the paper's guideline: unroll
the innermost loop fully when its trip count is static and the code-size
growth is acceptable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "UnrollEstimate",
    "estimate_unroll",
    "unroll_curve",
    "plan_unroll",
]


@dataclass(frozen=True)
class UnrollEstimate:
    """Predicted effect of unrolling a counted loop by ``factor``."""

    factor: int
    trip_count: int
    per_iteration: float  # instructions per original iteration
    speedup_vs_rolled: float  # Eq. 3
    code_growth: float  # static body size multiplier
    frees_iterator: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"U={self.factor}: {self.per_iteration:.2f} instr/iter, "
            f"{self.speedup_vs_rolled:.3f}x, code x{self.code_growth:.0f}"
        )


def estimate_unroll(
    body_instrs: float,
    trip_count: int,
    factor: int,
    loop_bookkeeping: float = 3.0,
    foldable_adds: float = 1.0,
) -> UnrollEstimate:
    """Predict per-iteration cost at one unroll factor.

    ``body_instrs`` excludes all bookkeeping; ``foldable_adds`` counts
    induction increments that partial unrolling shares across the factor
    and full unrolling removes entirely (hard-coded offsets).
    """
    if trip_count <= 0 or factor <= 0:
        raise ValueError("trip count and factor must be positive")
    if trip_count % factor:
        raise ValueError(
            f"factor {factor} does not divide trip count {trip_count}"
        )
    rolled = body_instrs + loop_bookkeeping + foldable_adds
    if factor == trip_count:
        per_iter = body_instrs  # everything folded, loop gone
    else:
        per_iter = (
            body_instrs
            + foldable_adds / factor  # one combined induction add
            + loop_bookkeeping / factor
        )
    return UnrollEstimate(
        factor=factor,
        trip_count=trip_count,
        per_iteration=per_iter,
        speedup_vs_rolled=rolled / per_iter,
        code_growth=float(factor),
        frees_iterator=factor == trip_count,
    )


def unroll_curve(
    body_instrs: float,
    trip_count: int,
    loop_bookkeeping: float = 3.0,
    foldable_adds: float = 1.0,
) -> list[UnrollEstimate]:
    """Estimates at every power-of-two factor up to full unroll."""
    factors = []
    f = 1
    while f < trip_count:
        if trip_count % f == 0:
            factors.append(f)
        f *= 2
    factors.append(trip_count)
    return [
        estimate_unroll(
            body_instrs, trip_count, f, loop_bookkeeping, foldable_adds
        )
        for f in factors
    ]


def plan_unroll(
    trip_count: int | None,
    body_instrs: float,
    max_code_growth: int = 4096,
) -> int | str | None:
    """The paper's guideline as a decision rule.

    Returns ``"full"``, a partial factor, or ``None``:

    * dynamic trip count → ``None`` (cannot fold, gains are marginal);
    * static trip count with acceptable code growth → ``"full"`` — on a
      GPU the win is the instruction-count reduction itself, so small
      bodies (no reordering potential) are *still* worth unrolling, the
      paper's key observation;
    * oversized full expansion → the largest power-of-two divisor that
      stays under the growth budget.
    """
    if trip_count is None:
        return None
    if trip_count * body_instrs <= max_code_growth:
        return "full"
    best = None
    f = 2
    while f < trip_count:
        if trip_count % f == 0 and f * body_instrs <= max_code_growth:
            best = f
        f *= 2
    return best

"""``repro.core`` — the paper's contribution as a reusable library.

Memory-layout optimization for large structures on CUDA-like memory
hierarchies (AoS → SoA → AoaS → SoAoaS), coalescing analysis per CUDA
toolchain revision, the analytic access-cost model, the loop-unrolling
speedup model of Eq. 3, and the end-to-end optimization procedure /
autotuner of Sec. IV.
"""

from .access import HALFWARP, HalfWarpAccess, accesses_for_indices, halfwarp_access, warp_accesses
from .coalescing import (
    POLICIES,
    CoalescingPolicy,
    DriverMergedPolicy,
    SegmentBasedPolicy,
    StrictHalfWarpPolicy,
    policy_for,
)
from .fields import (
    Field,
    PARTICLE_FIELDS,
    StructDecl,
    group_by_frequency,
    particle_struct,
    split_for_alignment,
)
from .layouts import (
    ALL_LAYOUT_KINDS,
    LAYOUT_KINDS,
    AoaSLayout,
    AoSLayout,
    LoadStep,
    MemoryLayout,
    SoALayout,
    SoAoaSLayout,
    make_layout,
)
from .autotuner import TuneConfig, TuneResult, autotune, default_space
from .model import SBPCounts, SBPModel, eq3_speedup, sbp_counts
from .optimizer import LayoutRecommendation, optimize_layout
from .timing import (
    AccessCost,
    MemoryCostModel,
    StructureReadEstimate,
    estimate_cycles_per_element,
    estimate_structure_read,
)
from .unrolling import UnrollEstimate, estimate_unroll, plan_unroll, unroll_curve
from .transactions import (
    TRANSACTION_SIZES,
    MemoryTransaction,
    cover_with_segments,
    segment_of,
    total_bytes,
    touched_segments,
)

__all__ = [
    "Field",
    "StructDecl",
    "PARTICLE_FIELDS",
    "particle_struct",
    "split_for_alignment",
    "group_by_frequency",
    "MemoryLayout",
    "LoadStep",
    "AoSLayout",
    "SoALayout",
    "AoaSLayout",
    "SoAoaSLayout",
    "make_layout",
    "LAYOUT_KINDS",
    "ALL_LAYOUT_KINDS",
    "HalfWarpAccess",
    "HALFWARP",
    "halfwarp_access",
    "warp_accesses",
    "accesses_for_indices",
    "CoalescingPolicy",
    "StrictHalfWarpPolicy",
    "DriverMergedPolicy",
    "SegmentBasedPolicy",
    "policy_for",
    "POLICIES",
    "MemoryTransaction",
    "TRANSACTION_SIZES",
    "segment_of",
    "touched_segments",
    "cover_with_segments",
    "total_bytes",
    "AccessCost",
    "MemoryCostModel",
    "StructureReadEstimate",
    "estimate_structure_read",
    "estimate_cycles_per_element",
    "SBPCounts",
    "SBPModel",
    "sbp_counts",
    "eq3_speedup",
    "UnrollEstimate",
    "estimate_unroll",
    "unroll_curve",
    "plan_unroll",
    "LayoutRecommendation",
    "optimize_layout",
    "TuneConfig",
    "TuneResult",
    "autotune",
    "default_space",
]

"""Memory transactions and DRAM segment arithmetic.

The unit of global-memory traffic on the simulated G80 is a *transaction*:
a naturally aligned burst of 32, 64 or 128 bytes.  Coalescing policies
(:mod:`repro.core.coalescing`) reduce a half-warp's individual accesses to a
list of transactions; the timing model charges the pipe per transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "TRANSACTION_SIZES",
    "MemoryTransaction",
    "segment_of",
    "touched_segments",
    "cover_with_segments",
    "total_bytes",
]

#: Legal transaction sizes, smallest to largest.
TRANSACTION_SIZES = (32, 64, 128)


@dataclass(frozen=True, order=True)
class MemoryTransaction:
    """One aligned DRAM burst."""

    address: int
    size: int

    def __post_init__(self) -> None:
        if self.size not in TRANSACTION_SIZES:
            raise ValueError(
                f"transaction size {self.size} not in {TRANSACTION_SIZES}"
            )
        if self.address % self.size:
            raise ValueError(
                f"transaction at {self.address:#x} not {self.size}-byte aligned"
            )

    @property
    def end(self) -> int:
        return self.address + self.size

    def covers(self, addr: int, nbytes: int) -> bool:
        return self.address <= addr and addr + nbytes <= self.end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tx({self.address:#x},{self.size}B)"


def segment_of(addr: int, segment_size: int) -> int:
    """Base address of the ``segment_size``-aligned segment holding ``addr``."""
    return (int(addr) // segment_size) * segment_size


def touched_segments(
    addresses: Iterable[int], access_size: int, segment_size: int
) -> list[int]:
    """Sorted unique bases of segments touched by per-thread accesses.

    An access that straddles a segment boundary touches two segments; with
    naturally aligned accesses (enforced by the simulator for 8/16-byte
    vectors) this only happens for the packed 28-byte AoS layout's 4-byte
    reads, which never straddle because 4 divides 32 — but the code stays
    general for robustness.
    """
    if segment_size not in TRANSACTION_SIZES:
        raise ValueError(f"segment size {segment_size} not in {TRANSACTION_SIZES}")
    bases: set[int] = set()
    for a in np.asarray(list(addresses), dtype=np.int64):
        first = segment_of(int(a), segment_size)
        last = segment_of(int(a) + access_size - 1, segment_size)
        bases.add(first)
        if last != first:
            bases.update(range(first + segment_size, last + 1, segment_size))
    return sorted(bases)


def cover_with_segments(
    addresses: Sequence[int], access_size: int
) -> list[MemoryTransaction]:
    """Minimal-ish cover of the accessed bytes with aligned transactions.

    Implements the compute-capability 1.2 "reduce transaction size" rule:
    start from 128-byte segments, then halve a segment's transaction while
    the touched bytes fit in one half.  This is the behaviour the paper's
    CUDA 2.2 runs exhibit.
    """
    if not len(addresses):
        return []
    txs: list[MemoryTransaction] = []
    addr_arr = np.asarray(addresses, dtype=np.int64)
    for seg in touched_segments(addresses, access_size, 128):
        lo = seg
        hi = seg + 128
        in_seg = addr_arr[(addr_arr >= lo - access_size + 1) & (addr_arr < hi)]
        first = max(int(in_seg.min()), lo)
        last = min(int(in_seg.max()) + access_size, hi)
        size = 128
        base = seg
        # Halve while the touched byte range fits in an aligned half.
        while size > 32:
            half = size // 2
            if last <= base + half:
                size = half
            elif first >= base + half:
                base += half
                size = half
            else:
                break
        txs.append(MemoryTransaction(base, size))
    return txs


def total_bytes(transactions: Iterable[MemoryTransaction]) -> int:
    return sum(t.size for t in transactions)

"""Coalescing policies: how half-warp accesses become transactions.

The paper's central experimental knob (Fig. 10/11) is the CUDA revision,
whose driver/hardware combination decides how the 16 individual accesses of
a half-warp are combined into DRAM transactions:

* **CUDA 1.0** (:class:`StrictHalfWarpPolicy`) — the documented CC 1.0
  rules: a half-warp coalesces only when thread *k* reads the *k*-th
  consecutive element from a ``16 * size``-aligned base.  Anything else
  degenerates into one 32-byte transaction *per thread* (no deduplication —
  two threads in the same segment still pay twice).
* **CUDA 1.1** (:class:`DriverMergedPolicy`) — the paper observes that 1.1
  handles unoptimized accesses far better, flattening the layout effect,
  and could not determine why ("cannot [be] determined with the available
  tools").  We model the simplest mechanism with that signature: the driver
  merges a half-warp's accesses into the minimal set of 128-byte segments
  (deduplicated), so uncoalesced patterns cost only a few extra
  transactions instead of 16.
* **CUDA 2.2** (:class:`SegmentBasedPolicy`) — CC 1.2-style issue: one
  transaction per *touched 32-byte segment*, with neighbouring touched
  segments merged up to 128 bytes when contiguous.  Deduplicated, so better
  than 1.0, but an uncoalesced stride ≥ 32 bytes still pays one transaction
  per thread — which is why the paper sees a 1.0-like pattern with ~30 %
  (not ~50 %) headroom.

All policies treat a *coalescible* access identically: 16 threads × 4 B →
one 64 B transaction, × 8 B → one 128 B, × 16 B → two 128 B.
"""

from __future__ import annotations

import abc

import numpy as np

from ..cudasim.device import Toolchain
from .access import HALFWARP, HalfWarpAccess
from .transactions import (
    MemoryTransaction,
    cover_with_segments,
    segment_of,
    touched_segments,
)

__all__ = [
    "CoalescingPolicy",
    "StrictHalfWarpPolicy",
    "DriverMergedPolicy",
    "SegmentBasedPolicy",
    "policy_for",
    "POLICIES",
]


class CoalescingPolicy(abc.ABC):
    """Maps one half-warp access to the transactions the device issues.

    Beyond the transaction split, a policy carries the *measured
    behavioural signature* of its CUDA revision (the paper treats
    revisions as opaque driver/compiler variants, Sec. III-A):

    ``wide_latency_factor``
        Latency multiplier for 8/16-byte per-thread loads.  G80-era
        microbenchmarks consistently show 64/128-bit loads slower per
        element than 32-bit loads; the per-revision values are calibrated
        against Fig. 10 (see EXPERIMENTS.md).
    ``latency_override``
        Revision-specific base DRAM latency (``None`` = device default).
        CUDA 2.2's driver shaved fixed overhead off every access.
    ``charges_replays``
        Whether extra transactions of an uncoalesced access occupy the
        SM's issue port (hardware replays).  CUDA 1.1's driver-side
        merging does not replay in the SM.
    """

    #: registry key; also used in figure labels
    name: str = "abstract"

    wide_latency_factor: dict[int, float] = {4: 1.0, 8: 1.8, 16: 3.0}
    latency_override: float | None = None
    charges_replays: bool = True

    @abc.abstractmethod
    def transactions(self, access: HalfWarpAccess) -> list[MemoryTransaction]:
        """Transactions issued for ``access`` (empty if no lane is active)."""

    def load_latency(self, timings, access_size: int) -> float:
        """Data-ready latency for a load of ``access_size`` bytes/thread."""
        base = (
            timings.latency
            if self.latency_override is None
            else self.latency_override
        )
        return base * self.wide_latency_factor[access_size]

    # -- shared helpers ---------------------------------------------------

    @staticmethod
    def _coalesced_transactions(
        base: int, size_bytes: int
    ) -> list[MemoryTransaction] | None:
        """The ideal transaction set for a sequential, aligned half-warp.

        Returns ``None`` when the base violates the ``16 * size`` alignment
        requirement (the half-warp then falls back to the uncoalesced path).
        """
        span = HALFWARP * size_bytes  # 64, 128 or 256 bytes
        if base % span:
            return None
        if span <= 128:
            return [MemoryTransaction(base, span)]
        return [
            MemoryTransaction(base, 128),
            MemoryTransaction(base + 128, 128),
        ]

    def is_coalesced(self, access: HalfWarpAccess) -> bool:
        """Whether the access takes the single-transaction fast path."""
        base = access.sequential_base()
        return base is not None and (
            self._coalesced_transactions(base, access.size_bytes) is not None
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class StrictHalfWarpPolicy(CoalescingPolicy):
    """Documented compute-capability 1.0 behaviour (CUDA 1.0 runs)."""

    name = "strict-halfwarp"
    wide_latency_factor = {4: 1.0, 8: 1.8, 16: 3.0}

    def transactions(self, access: HalfWarpAccess) -> list[MemoryTransaction]:
        if not access.any_active:
            return []
        base = access.sequential_base()
        if base is not None:
            txs = self._coalesced_transactions(base, access.size_bytes)
            if txs is not None:
                return txs
        # Uncoalesced: one minimum-size transaction per active thread, no
        # deduplication — the documented 16-fold slowdown of CC 1.0.
        out: list[MemoryTransaction] = []
        for addr in access.active_addresses:
            for seg in touched_segments([int(addr)], access.size_bytes, 32):
                out.append(MemoryTransaction(seg, 32))
        return out


class DriverMergedPolicy(CoalescingPolicy):
    """CUDA 1.1's observed forgiveness of unoptimized accesses.

    The flip side the paper notices ("a complete different pattern"): the
    1.1 driver's staging also slowed wide vector loads, so the aligned
    layouts gain much less than under 1.0/2.2 — modeled by the higher
    wide-load factor.
    """

    name = "driver-merged"
    wide_latency_factor = {4: 1.0, 8: 2.2, 16: 3.6}
    charges_replays = False

    def transactions(self, access: HalfWarpAccess) -> list[MemoryTransaction]:
        if not access.any_active:
            return []
        base = access.sequential_base()
        if base is not None:
            txs = self._coalesced_transactions(base, access.size_bytes)
            if txs is not None:
                return txs
        segs = touched_segments(
            access.active_addresses, access.size_bytes, 128
        )
        return [MemoryTransaction(s, 128) for s in segs]


class SegmentBasedPolicy(CoalescingPolicy):
    """CC 1.2-style minimal segment cover (CUDA 2.2 runs)."""

    name = "segment-based"
    wide_latency_factor = {4: 1.0, 8: 2.0, 16: 3.4}
    latency_override = 330.0

    def transactions(self, access: HalfWarpAccess) -> list[MemoryTransaction]:
        if not access.any_active:
            return []
        base = access.sequential_base()
        if base is not None:
            txs = self._coalesced_transactions(base, access.size_bytes)
            if txs is not None:
                return txs
        # Deduplicate into 32-byte segments, then let contiguous runs grow
        # back into properly aligned 64/128-byte transactions.
        addrs = access.active_addresses
        segs32 = touched_segments(addrs, access.size_bytes, 32)
        if not segs32:
            return []
        # cover_with_segments implements the size-reduction rule per
        # 128-byte region; feeding it the deduplicated 32B segment bases
        # reproduces "min number of 32/64/128B transactions".
        return cover_with_segments(segs32, 32)


#: Singleton policy registry.
POLICIES: dict[str, CoalescingPolicy] = {
    p.name: p
    for p in (StrictHalfWarpPolicy(), DriverMergedPolicy(), SegmentBasedPolicy())
}


def policy_for(toolchain: Toolchain | str) -> CoalescingPolicy:
    """Coalescing policy used by a CUDA toolchain revision (or by name)."""
    if isinstance(toolchain, Toolchain):
        return POLICIES[toolchain.coalescing_policy_name]
    if toolchain in POLICIES:
        return POLICIES[toolchain]
    try:
        return POLICIES[Toolchain(toolchain).coalescing_policy_name]
    except ValueError:
        raise ValueError(
            f"unknown toolchain/policy {toolchain!r}; "
            f"policies: {sorted(POLICIES)}; "
            f"toolchains: {[t.value for t in Toolchain]}"
        ) from None

"""Per-warp address-stream generation from layout load steps.

Coalescing on compute capability 1.x is decided per *half-warp* (16
threads), so the analysis unit here is :class:`HalfWarpAccess`: the 16
per-thread addresses (with an activity mask) of one load instruction, plus
the per-thread access width.

The canonical n-body access — thread ``t`` of a warp reading record
``first + t`` — is produced by :func:`warp_accesses`; arbitrary gather
patterns go through :func:`accesses_for_indices`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .layouts import LoadStep

__all__ = [
    "HALFWARP",
    "HalfWarpAccess",
    "halfwarp_access",
    "warp_accesses",
    "accesses_for_indices",
]

HALFWARP = 16


@dataclass(frozen=True)
class HalfWarpAccess:
    """Addresses issued by one half-warp for one load/store instruction."""

    addresses: np.ndarray  # int64[HALFWARP]; entries under inactive lanes ignored
    size_bytes: int  # per-thread access width: 4, 8 or 16
    active: np.ndarray = field(
        default_factory=lambda: np.ones(HALFWARP, dtype=bool)
    )

    def __post_init__(self) -> None:
        addresses = np.asarray(self.addresses, dtype=np.int64)
        active = np.asarray(self.active, dtype=bool)
        if addresses.shape != (HALFWARP,) or active.shape != (HALFWARP,):
            raise ValueError(
                f"half-warp arrays must have shape ({HALFWARP},); got "
                f"{addresses.shape} and {active.shape}"
            )
        if self.size_bytes not in (4, 8, 16):
            raise ValueError(f"access width {self.size_bytes} not in (4, 8, 16)")
        object.__setattr__(self, "addresses", addresses)
        object.__setattr__(self, "active", active)

    @property
    def active_addresses(self) -> np.ndarray:
        return self.addresses[self.active]

    @property
    def any_active(self) -> bool:
        return bool(self.active.any())

    def is_sequential(self) -> bool:
        """Thread ``k`` accesses ``base + k * size`` for every active lane.

        This is the CC 1.0 coalescing precondition: the k-th thread of the
        half-warp must access the k-th element of the accessed region.
        """
        lanes = np.flatnonzero(self.active)
        if lanes.size == 0:
            return True
        base = int(self.addresses[lanes[0]]) - int(lanes[0]) * self.size_bytes
        expect = base + lanes * self.size_bytes
        return bool(np.array_equal(self.addresses[lanes], expect))

    def sequential_base(self) -> int | None:
        """The implied lane-0 base address if :meth:`is_sequential`, else None."""
        if not self.is_sequential() or not self.any_active:
            return None
        lane = int(np.flatnonzero(self.active)[0])
        return int(self.addresses[lane]) - lane * self.size_bytes


def halfwarp_access(
    step: LoadStep,
    first_record: int,
    half: int = 0,
    active: np.ndarray | None = None,
) -> HalfWarpAccess:
    """Addresses for half-warp ``half`` (0 or 1) of a warp whose thread ``t``
    reads record ``first_record + t`` through ``step``."""
    if half not in (0, 1):
        raise ValueError("half must be 0 or 1")
    lanes = np.arange(HALFWARP, dtype=np.int64) + half * HALFWARP
    addrs = step.address(first_record + lanes)
    if active is None:
        active = np.ones(HALFWARP, dtype=bool)
    return HalfWarpAccess(addrs, step.vector.nbytes, active)


def warp_accesses(
    step: LoadStep, first_record: int, active: np.ndarray | None = None
) -> list[HalfWarpAccess]:
    """Both half-warps of one warp-wide load of ``step``.

    ``active`` is an optional 32-lane mask (e.g. tail warps where
    ``first_record + t >= n``).
    """
    if active is not None:
        active = np.asarray(active, dtype=bool)
        if active.shape != (2 * HALFWARP,):
            raise ValueError(f"warp mask must have {2 * HALFWARP} lanes")
    out = []
    for half in (0, 1):
        mask = None if active is None else active[half * HALFWARP : (half + 1) * HALFWARP]
        out.append(halfwarp_access(step, first_record, half, mask))
    return out


def accesses_for_indices(
    step: LoadStep, indices: np.ndarray
) -> list[HalfWarpAccess]:
    """Half-warp accesses for an arbitrary per-thread record gather.

    ``indices`` holds one record index per thread (any multiple of 16
    threads); negative indices mark inactive lanes.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1 or indices.size % HALFWARP:
        raise ValueError("indices must be a 1-D multiple of 16 lanes")
    out = []
    for start in range(0, indices.size, HALFWARP):
        chunk = indices[start : start + HALFWARP]
        active = chunk >= 0
        addrs = step.address(np.where(active, chunk, 0))
        out.append(HalfWarpAccess(addrs, step.vector.nbytes, active))
    return out

"""Memory layouts for arrays of large structures (paper Sec. II).

A :class:`MemoryLayout` maps *records* (logical struct instances, e.g. one
particle) onto a flat device-memory region, and — crucially for this paper —
describes *how a thread reads record i* as a sequence of :class:`LoadStep`
vector accesses.  Everything downstream consumes these steps:

* the coalescing analyzer turns a half-warp of step addresses into memory
  transactions (:mod:`repro.core.coalescing`);
* kernel builders emit one ``LD_GLOBAL`` per step
  (:mod:`repro.gravit.gpu_kernels`);
* ``pack``/``unpack`` move numpy arrays in and out of device buffers.

The four layouts of the paper:

=========  =============================================  ==================
class      paper section                                  traffic per record
=========  =============================================  ==================
AoS        II-A  array of (packed) structures             7 scalar reads,
                                                          not coalesced
SoA        II-B  structure of arrays                      7 scalar reads,
                                                          coalesced
AoaS       II-C  array of __align__(16) structures        2 float4 reads,
                                                          not coalesced
SoAoaS     II-D  structure of arrays of aligned structs   2 float4 reads,
                                                          coalesced
=========  =============================================  ==================

Fig. 10 additionally distinguishes "unopt" from "AoS": we read "unopt" as
the original packed 28-byte-stride layout (records straddle 32-byte
segments) and "AoS" as the same access pattern on a 32-byte padded stride
(fields segment-aligned, reads still uncoalesced).  ``make_layout`` exposes
both spellings.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..cudasim.dtypes import F32, VecType
from .fields import (
    Field,
    StructDecl,
    group_by_frequency,
    particle_struct,
    split_for_alignment,
)

__all__ = [
    "LoadStep",
    "MemoryLayout",
    "AoSLayout",
    "SoALayout",
    "AoaSLayout",
    "SoAoaSLayout",
    "make_layout",
    "LAYOUT_KINDS",
]

#: Device allocations for field arrays are aligned to this many bytes so a
#: layout never loses coalescing to an unaligned array base (cudaMalloc
#: guarantees 256-byte alignment).
ARRAY_BASE_ALIGN = 256


def _align_up(value: int, align: int) -> int:
    return -(-value // align) * align


@dataclass(frozen=True)
class LoadStep:
    """One vector access per record: ``address(i) = base + stride * i``.

    ``fields`` names the semantic field carried in each vector lane
    (``None`` for hidden padding lanes).  All layouts in this package are
    affine in the record index, which is what lets kernel builders fold the
    address computation into a single MAD and the unroller fold it into an
    immediate offset.
    """

    fields: tuple[str | None, ...]
    vector: VecType
    base: int
    stride: int

    def __post_init__(self) -> None:
        if len(self.fields) != self.vector.lanes:
            raise ValueError(
                f"{len(self.fields)} field names for a "
                f"{self.vector.lanes}-lane vector"
            )
        if self.base % 4 or self.stride % 4:
            raise ValueError("load step base/stride must be word aligned")

    def address(self, index):
        """Byte address of the access for record ``index`` (vectorizable)."""
        return self.base + self.stride * np.asarray(index)

    def lane_of(self, field: str) -> int:
        try:
            return self.fields.index(field)
        except ValueError:
            raise KeyError(f"step does not carry field {field!r}") from None

    @property
    def is_aligned(self) -> bool:
        """Whether every record's access is naturally aligned."""
        align = self.vector.alignment
        return self.base % align == 0 and self.stride % align == 0

    @property
    def semantic_fields(self) -> tuple[str, ...]:
        return tuple(f for f in self.fields if f is not None)


class MemoryLayout(abc.ABC):
    """Maps ``n`` records of ``struct`` onto a flat byte region."""

    #: short identifier used in figures and the layout registry
    kind: str = "abstract"

    def __init__(self, struct: StructDecl, n: int) -> None:
        if n <= 0:
            raise ValueError(f"record count must be positive, got {n}")
        self.struct = struct
        self.n = int(n)
        self._steps = tuple(self._build_steps())
        self._check_steps()

    # -- subclass responsibilities -----------------------------------------

    @abc.abstractmethod
    def _build_steps(self) -> Iterable[LoadStep]:
        """Produce the load steps that together cover every field once."""

    @property
    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Total bytes of the device region backing the layout."""

    # -- generic API ---------------------------------------------------------

    @property
    def steps(self) -> tuple[LoadStep, ...]:
        return self._steps

    @property
    def field_names(self) -> tuple[str, ...]:
        return self.struct.field_names

    @property
    def size_words(self) -> int:
        return self.size_bytes // 4

    def _check_steps(self) -> None:
        covered: list[str] = []
        for step in self._steps:
            covered.extend(step.semantic_fields)
        if sorted(covered) != sorted(self.field_names):
            raise ValueError(
                f"{type(self).__name__} steps cover {sorted(covered)}, "
                f"expected {sorted(self.field_names)}"
            )
        limit = self.size_bytes
        for step in self._steps:
            last = step.base + step.stride * (self.n - 1) + step.vector.nbytes
            if step.base < 0 or last > limit:
                raise ValueError(
                    f"step {step} escapes the layout region ({last} > {limit})"
                )

    def read_plan(
        self, fields: Sequence[str] | None = None
    ) -> tuple[LoadStep, ...]:
        """Minimal subsequence of steps covering the requested fields.

        This is where the paper's access-frequency grouping pays off: a
        kernel that only needs positions and mass receives a single-step
        plan under SoAoaS but a seven-step plan under AoS.
        """
        if fields is None:
            return self._steps
        wanted = set(fields)
        unknown = wanted - set(self.field_names)
        if unknown:
            raise KeyError(f"unknown fields {sorted(unknown)}")
        plan = tuple(
            s for s in self._steps if wanted.intersection(s.semantic_fields)
        )
        return plan

    def step_for(self, field: str) -> LoadStep:
        for step in self._steps:
            if field in step.semantic_fields:
                return step
        raise KeyError(f"layout has no field {field!r}")

    def address(self, field: str, index: int) -> int:
        """Byte address of ``field`` of record ``index``."""
        if not 0 <= index < self.n:
            raise IndexError(f"record index {index} out of range 0..{self.n - 1}")
        step = self.step_for(field)
        return int(step.address(index)) + 4 * step.lane_of(field)

    # -- host <-> device data movement ----------------------------------------

    def pack(self, data: Mapping[str, np.ndarray]) -> np.ndarray:
        """Serialize per-field arrays into a float32 word image."""
        missing = set(self.field_names) - set(data)
        if missing:
            raise KeyError(f"pack missing fields {sorted(missing)}")
        words = np.zeros(self.size_words, dtype=np.float32)
        idx = np.arange(self.n, dtype=np.int64)
        for step in self._steps:
            word_base = (step.base // 4) + idx * (step.stride // 4)
            for lane, fname in enumerate(step.fields):
                if fname is None:
                    continue
                arr = np.asarray(data[fname], dtype=np.float32)
                if arr.shape != (self.n,):
                    raise ValueError(
                        f"field {fname!r}: expected shape ({self.n},), "
                        f"got {arr.shape}"
                    )
                words[word_base + lane] = arr
        return words

    def unpack(self, words: np.ndarray) -> dict[str, np.ndarray]:
        """Inverse of :meth:`pack`."""
        words = np.asarray(words, dtype=np.float32)
        if words.shape != (self.size_words,):
            raise ValueError(
                f"expected {self.size_words} words, got shape {words.shape}"
            )
        idx = np.arange(self.n, dtype=np.int64)
        out: dict[str, np.ndarray] = {}
        for step in self._steps:
            word_base = (step.base // 4) + idx * (step.stride // 4)
            for lane, fname in enumerate(step.fields):
                if fname is not None:
                    out[fname] = words[word_base + lane].copy()
        return out

    def row_regions(
        self,
        lo: int,
        hi: int,
        fields: Sequence[str] | None = None,
    ) -> tuple[tuple[int, int], ...]:
        """Byte regions covering ``fields`` of records ``lo..hi-1``.

        Returns merged, word-aligned ``(offset, nbytes)`` intervals — the
        pieces a multi-device driver must ship to replicate a row block of
        this layout on a peer.  Interval merging is per *step* ranges:
        a strided step whose per-record accesses do not tile the stride
        (AoS reading only posmass) is shipped as one contiguous span from
        its first to last touched byte, so interleaved layouts move more
        bytes per row than grouped ones — the copy-overhead asymmetry the
        multi-GPU experiment measures.
        """
        if not 0 <= lo < hi <= self.n:
            raise IndexError(
                f"row range [{lo}, {hi}) out of bounds for n={self.n}"
            )
        spans: list[tuple[int, int]] = []
        for step in self.read_plan(fields):
            first = step.base + step.stride * lo
            last = step.base + step.stride * (hi - 1) + step.vector.nbytes
            spans.append((first, last))
        spans.sort()
        merged: list[list[int]] = []
        for first, last in spans:
            if merged and first <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], last)
            else:
                merged.append([first, last])
        return tuple((first, last - first) for first, last in merged)

    # -- metrics ---------------------------------------------------------------

    def loads_per_record(self, fields: Sequence[str] | None = None) -> int:
        """Number of load instructions a thread issues per record."""
        return len(self.read_plan(fields))

    def elements_per_record(self, fields: Sequence[str] | None = None) -> int:
        """4-byte elements transferred per record (Fig. 10 denominator).

        Includes hidden padding lanes — the paper divides by the number of
        elements actually moved (8 for the aligned layouts, 7 otherwise).
        """
        return sum(s.vector.lanes for s in self.read_plan(fields))

    def bytes_per_record(self, fields: Sequence[str] | None = None) -> int:
        return 4 * self.elements_per_record(fields)

    def describe(self) -> str:
        lines = [f"{type(self).__name__}({self.struct.name} x {self.n})"]
        for step in self._steps:
            names = ",".join(f or "pad" for f in step.fields)
            lines.append(
                f"  {step.vector}: [{names}] @ {step.base} + {step.stride}*i"
                f" ({'aligned' if step.is_aligned else 'unaligned'})"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} n={self.n} bytes={self.size_bytes}>"


class AoSLayout(MemoryLayout):
    """Array of structures (paper Sec. II-A, Fig. 2).

    A packed particle struct is 28 bytes, so record bases wander across the
    32-byte transaction segments and none of the 7 scalar reads of a
    half-warp are coalescible.  Handing this class an ``__align__(16)``
    struct yields the padded-stride variant ("AoS" tick of Fig. 10): 32-byte
    stride, fields segment-aligned, accesses still uncoalesced.
    """

    kind = "aos"

    def _build_steps(self) -> Iterable[LoadStep]:
        stride = self.struct.size
        for f in self.struct.fields:
            yield LoadStep(
                fields=(f.name,),
                vector=VecType(F32, 1),
                base=self.struct.offset_of(f.name),
                stride=stride,
            )

    @property
    def size_bytes(self) -> int:
        return self.struct.size * self.n


class SoALayout(MemoryLayout):
    """Structure of arrays (paper Sec. II-B, Fig. 4).

    One scalar array per field; every warp read of a field is coalesced,
    but a thread still issues 7 separate loads per record.
    """

    kind = "soa"

    def _build_steps(self) -> Iterable[LoadStep]:
        base = 0
        for f in self.struct.fields:
            yield LoadStep(
                fields=(f.name,),
                vector=VecType(F32, 1),
                base=base,
                stride=4,
            )
            base += _align_up(4 * self.n, ARRAY_BASE_ALIGN)

    @property
    def size_bytes(self) -> int:
        return _align_up(4 * self.n, ARRAY_BASE_ALIGN) * len(self.struct.fields)


class AoaSLayout(MemoryLayout):
    """Array of aligned structures (paper Sec. II-C, Fig. 6).

    The struct is padded to 32 bytes by ``__align__(16)`` so a thread
    fetches it with two 128-bit loads — few accesses, but consecutive
    threads touch addresses 32 bytes apart, so nothing coalesces.
    """

    kind = "aoas"

    def __init__(self, struct: StructDecl, n: int) -> None:
        if struct.align != 16:
            struct = struct.with_align(16)
        super().__init__(struct, n)

    def _build_steps(self) -> Iterable[LoadStep]:
        stride = self.struct.size
        padded = self.struct.padded_fields
        for chunk_base in range(0, stride, 16):
            lanes = padded[chunk_base // 4 : chunk_base // 4 + 4]
            yield LoadStep(
                fields=tuple(
                    None if f.is_padding else f.name for f in lanes
                ),
                vector=VecType(F32, 4),
                base=chunk_base,
                stride=stride,
            )

    @property
    def size_bytes(self) -> int:
        return self.struct.size * self.n


class SoAoaSLayout(MemoryLayout):
    """Structure of arrays of aligned structures (paper Sec. II-D, Fig. 8).

    The paper's proposal: split the record into ≤128-bit aligned
    sub-structures grouped by access frequency, and store each group in its
    own array.  Each group is fetched with a single coalesced vector load.
    """

    kind = "soaoas"

    def __init__(
        self,
        struct: StructDecl,
        n: int,
        groups: Sequence[StructDecl] | None = None,
        boundary: int = 16,
    ) -> None:
        if groups is None:
            groups = self.derive_groups(struct, boundary)
        for g in groups:
            if g.size > 16:
                raise ValueError(
                    f"group {g.name!r} is {g.size} bytes; groups must fit "
                    f"one 128-bit access"
                )
        self.groups = tuple(groups)
        declared = [f.name for g in self.groups for f in g.fields]
        if sorted(declared) != sorted(struct.field_names):
            raise ValueError(
                "groups must partition the struct fields exactly; "
                f"got {sorted(declared)} vs {sorted(struct.field_names)}"
            )
        super().__init__(struct, n)

    @staticmethod
    def derive_groups(
        struct: StructDecl, boundary: int = 16
    ) -> tuple[StructDecl, ...]:
        """Paper Sec. IV procedure: frequency grouping, then the 64/128-bit
        split (``boundary`` selects which of the two the paper mentions)."""
        if boundary not in (8, 16):
            raise ValueError("boundary must be 8 or 16 bytes")
        groups: list[StructDecl] = []
        for i, bundle in enumerate(group_by_frequency(struct.fields)):
            probe = StructDecl(f"{struct.name}_g{i}", bundle)
            if probe.natural_size > boundary:
                groups.extend(split_for_alignment(probe, boundary))
            else:
                align = 4 if probe.natural_size <= 4 else (
                    8 if probe.natural_size <= 8 else 16
                )
                groups.append(probe.with_align(min(align, boundary)))
        return tuple(groups)

    def _build_steps(self) -> Iterable[LoadStep]:
        base = 0
        for g in self.groups:
            lanes = g.padded_fields
            yield LoadStep(
                fields=tuple(None if f.is_padding else f.name for f in lanes),
                vector=VecType(F32, len(lanes)),
                base=base,
                stride=g.size,
            )
            base += _align_up(g.size * self.n, ARRAY_BASE_ALIGN)

    @property
    def size_bytes(self) -> int:
        return sum(
            _align_up(g.size * self.n, ARRAY_BASE_ALIGN) for g in self.groups
        )


#: Layout registry keys in the order Fig. 10 plots them (plus the 64-bit
#: SoAoaS variant the paper mentions as the alternative split).
LAYOUT_KINDS = ("unopt", "aos", "soa", "aoas", "soaoas")
ALL_LAYOUT_KINDS = (*LAYOUT_KINDS, "soaoas64")


def make_layout(kind: str, n: int, struct: StructDecl | None = None) -> MemoryLayout:
    """Build one of the paper's layouts for ``n`` particle records.

    ``unopt``
        the original Gravit layout: packed 28-byte AoS (Sec. II-A);
    ``aos``
        AoS on a 32-byte padded stride, still scalar uncoalesced reads;
    ``soa`` / ``aoas`` / ``soaoas``
        Sections II-B / II-C / II-D;
    ``soaoas64``
        the Sec. IV alternative: sub-structures split at the 64-bit
        boundary (float2 accesses instead of float4).
    """
    base = struct or particle_struct()
    if kind == "unopt":
        return AoSLayout(base, n)
    if kind == "aos":
        return AoSLayout(base.with_align(16), n)
    if kind == "soa":
        return SoALayout(base, n)
    if kind == "aoas":
        return AoaSLayout(base, n)
    if kind == "soaoas":
        return SoAoaSLayout(base, n)
    if kind == "soaoas64":
        return SoAoaSLayout(base, n, boundary=8)
    raise ValueError(
        f"unknown layout kind {kind!r}; choose from {ALL_LAYOUT_KINDS}"
    )

"""The paper's S/B/P kernel cost model (Sec. IV-A, Eq. 2–3).

A tiled O(n²) kernel decomposes into:

* **S** — thread setup, executed once per thread;
* **B** — block data fetch, executed ``N/K`` times per thread;
* **P** — the innermost loop body, executed ``N`` times per thread.

Per-thread cost ≈ ``S + (N/K)·B + N·P``, so for large N only P matters
and the speedup of any P-shrinking transform approaches ``P1/P2``
(Eq. 3).  This module extracts S/B/P statically from kernel IR — counting
either instructions or issue cycles — and evaluates the model; the
unrolling experiment compares its prediction against cycle simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cudasim.device import DeviceProperties, G8800GTX
from ..cudasim.ir import Kernel, LoopStmt, RawStmt, Seq, Stmt, walk_instrs
from ..cudasim.isa import Instr, IssueClass

__all__ = ["SBPCounts", "SBPModel", "sbp_counts", "eq3_speedup"]


def _issue_cycles(ins: Instr, device: DeviceProperties) -> float:
    cls = ins.issue_class
    if cls is IssueClass.SFU:
        return float(device.sfu_issue_cycles)
    if cls is IssueClass.FREE:
        return 0.0
    return float(device.alu_issue_cycles)


@dataclass(frozen=True)
class SBPCounts:
    """Static S/B/P weights of one kernel (instructions or issue cycles)."""

    setup: float  # S: once per thread
    per_slice: float  # B: per outer-loop iteration
    per_iteration: float  # P: per innermost-loop iteration
    inner_trip: int | None  # K if statically known

    def describe(self) -> str:
        return (
            f"S={self.setup:.0f}  B={self.per_slice:.0f}/slice  "
            f"P={self.per_iteration:.0f}/iteration"
        )


def sbp_counts(
    kernel: Kernel,
    device: DeviceProperties | None = None,
    weight: str = "instructions",
) -> SBPCounts:
    """Extract S/B/P from a structured kernel.

    The *outermost* loop is the slice loop (B = its body excluding inner
    loops), the innermost loop is P.  ``weight`` is ``"instructions"``
    (count 1 per real instruction, the paper's formulation) or
    ``"cycles"`` (weight by issue cost, a better predictor on a machine
    whose SFU ops issue 4× slower).
    """
    if weight not in ("instructions", "cycles"):
        raise ValueError("weight must be 'instructions' or 'cycles'")
    dev = device or G8800GTX

    def cost(ins: Instr) -> float:
        if not ins.is_real:
            return 0.0
        return 1.0 if weight == "instructions" else _issue_cycles(ins, dev)

    def stmt_cost(stmt: Stmt) -> float:
        return sum(cost(i) for i in walk_instrs(stmt))

    # Locate the outermost loop chain.
    def find_loops(stmt: Stmt) -> list[LoopStmt]:
        if isinstance(stmt, LoopStmt):
            return [stmt]
        if isinstance(stmt, Seq):
            out: list[LoopStmt] = []
            for s in stmt:
                out.extend(find_loops(s))
            return out
        return []

    top_loops = find_loops(kernel.body)
    if not top_loops:
        total = stmt_cost(kernel.body)
        return SBPCounts(total, 0.0, 0.0, None)
    outer = top_loops[0]
    inner_loops = find_loops(outer.body)
    setup = stmt_cost(kernel.body) - stmt_cost(outer.body)
    if inner_loops:
        inner = inner_loops[0]
        per_slice = stmt_cost(outer.body) - stmt_cost(inner.body)
        trip = inner.static_trip_count()
        per_iter = stmt_cost(inner.body)
        # Loop bookkeeping of the inner loop: one IADD+SETP+BRA per
        # iteration, materialized by lowering rather than present in IR.
        bookkeeping = 3.0 if weight == "instructions" else 3.0 * dev.alu_issue_cycles
        per_iter += bookkeeping
        return SBPCounts(setup, per_slice, per_iter, trip)
    per_slice = stmt_cost(outer.body)
    return SBPCounts(setup, per_slice, 0.0, outer.static_trip_count())


@dataclass(frozen=True)
class SBPModel:
    """Evaluate Eq. 2 for problem sizes."""

    counts: SBPCounts
    block_size: int

    def per_thread_cost(self, n: int) -> float:
        c = self.counts
        slices = -(-n // self.block_size)
        return c.setup + slices * c.per_slice + slices * self.block_size * c.per_iteration

    def speedup_over(self, other: "SBPModel", n: int) -> float:
        """Eq. 3 with all terms retained (exact for any N)."""
        return other.per_thread_cost(n) / self.per_thread_cost(n)


def eq3_speedup(p1: float, p2: float) -> float:
    """The paper's large-N limit: speedup ≈ P1 / P2."""
    if p2 <= 0:
        raise ValueError("P2 must be positive")
    return p1 / p2

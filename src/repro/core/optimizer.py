"""The paper's layout-optimization procedure as an executable tool.

Sec. IV states the general recipe:

1. group data in portions with similar access frequencies;
2. split structures that exceed the alignment boundaries into smaller
   64/128-bit structures that can be aligned;
3. organize the aligned structures in arrays to allow coalesced reads.

:func:`optimize_layout` runs the recipe on any :class:`StructDecl` and
returns the recommended layout **with the reasoning**, plus an analytic
before/after comparison under a chosen CUDA revision.  Applied to the
Gravit particle record it derives exactly the paper's SoAoaS
(posmass + velocity) layout — asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cudasim.device import DeviceProperties, G8800GTX, Toolchain
from .coalescing import CoalescingPolicy, policy_for
from .fields import StructDecl, group_by_frequency, split_for_alignment
from .layouts import AoSLayout, MemoryLayout, SoAoaSLayout
from .timing import estimate_structure_read

__all__ = ["LayoutRecommendation", "optimize_layout"]


@dataclass(frozen=True)
class LayoutRecommendation:
    """Outcome of the three-step procedure."""

    struct: StructDecl
    groups: tuple[StructDecl, ...]
    layout_factory: type
    rationale: tuple[str, ...]
    predicted_speedup: float  # vs packed AoS, serialized read protocol
    policy_name: str

    def build(self, n: int) -> MemoryLayout:
        """Materialize the recommended layout for ``n`` records."""
        return SoAoaSLayout(self.struct, n, groups=self.groups)

    def report(self) -> str:
        lines = [f"Layout recommendation for struct {self.struct.name!r}:"]
        lines += [f"  - {r}" for r in self.rationale]
        lines.append(
            f"  predicted read speedup vs packed AoS "
            f"({self.policy_name}): {self.predicted_speedup:.2f}x"
        )
        return "\n".join(lines)


def optimize_layout(
    struct: StructDecl,
    n_probe: int = 4096,
    toolchain: Toolchain | str | CoalescingPolicy = Toolchain.CUDA_1_0,
    device: DeviceProperties = G8800GTX,
    frequency_ratio: float = 10.0,
) -> LayoutRecommendation:
    """Run the paper's Sec. IV procedure on ``struct``."""
    policy = (
        toolchain
        if isinstance(toolchain, CoalescingPolicy)
        else policy_for(toolchain)
    )
    rationale: list[str] = []

    # Step 1: frequency grouping.
    bundles = group_by_frequency(struct.fields, frequency_ratio)
    rationale.append(
        f"step 1: {len(bundles)} access-frequency group(s): "
        + "; ".join(
            "(" + ", ".join(f.name for f in g) + ")" for g in bundles
        )
    )

    # Step 2: split each group at the 128-bit boundary and align.
    groups: list[StructDecl] = []
    for gi, bundle in enumerate(bundles):
        probe = StructDecl(f"{struct.name}_g{gi}", bundle)
        if probe.natural_size > 16:
            parts = split_for_alignment(probe, 16)
            rationale.append(
                f"step 2: group {gi} is {probe.natural_size} B > 128 bit; "
                f"split into {len(parts)} aligned sub-structures"
            )
            groups.extend(parts)
        else:
            align = 4 if probe.natural_size <= 4 else (
                8 if probe.natural_size <= 8 else 16
            )
            groups.append(probe.with_align(align))
            rationale.append(
                f"step 2: group {gi} fits {8 * align} bit; "
                f"aligned to {align} B"
                + (
                    " (hidden padding element added)"
                    if StructDecl("t", bundle, align).size > probe.natural_size
                    else ""
                )
            )

    # Step 3: arrays of the aligned sub-structures.
    rationale.append(
        "step 3: store each aligned sub-structure in its own array "
        "so half-warp accesses coalesce (SoAoaS)"
    )

    baseline = AoSLayout(struct, n_probe)
    candidate = SoAoaSLayout(struct, n_probe, groups=tuple(groups))
    before = estimate_structure_read(baseline, policy, device)
    after = estimate_structure_read(candidate, policy, device)
    speedup = (
        before.per_element_serialized / after.per_element_serialized
    )
    return LayoutRecommendation(
        struct=struct,
        groups=tuple(groups),
        layout_factory=SoAoaSLayout,
        rationale=tuple(rationale),
        predicted_speedup=speedup,
        policy_name=policy.name,
    )
